"""Fleet-scale characterization over a sampled chip population.

The paper characterizes a two-chip testbed (Sec. V); the methodology only
becomes a vendor story when it is statistically validated across process
variation — thousands of sampled chips, not two.  This driver runs the
Fig. 6 idle → uBench stages over ``n_chips`` independently sampled chips
and converges each chip's baseline and fine-tuned operating points through
the fleet-scale batched solver
(:func:`repro.fastpath.population.solve_fleet`).

Memory discipline: chips are processed in bounded *chunks* — each chunk's
chips are sampled, characterized, batch-solved, folded into streaming
accumulators, and dropped.  Peak memory is O(chunk size), results are
exactly independent of the chunk size (every chip's RNG streams derive
from ``seed + chip index``, and the solve cache keys on content-addressed
fingerprints), and population size is bounded by wall-clock, not RAM.

Aggregation is streaming: per-step histograms of idle and uBench limits,
nearest-rank quantiles of the safe reduction steps, rollback-rate
summaries, and running min/mean/max of the baseline and fine-tuned
frequencies.  When an :class:`~repro.obs.runtime.Observability` context is
installed the driver feeds the ``fleet.*`` instruments and the run can be
sealed into a standard run manifest (:func:`run_fleet_observed`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.rendering import ascii_table
from ..atm.chip_sim import ChipSim, CoreAssignment, MarginMode
from ..errors import ConfigurationError
from ..fastpath.cache import reset_solve_cache
from ..fastpath.compiled import compile_draw
from ..fastpath.population import solve_chips_cached
from ..fastpath.store import (
    KIND_CHAR,
    configure_worker_store,
    diff_stats,
    get_store,
    publish_store_counters,
)
from ..obs.manifest import RunManifest, build_manifest, save_manifest
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import Observability, get_obs, observed
from ..obs.sinks import JsonlFileSink, NullSink
from ..obs.stream.exact import MergeableStat
from ..obs.stream.progress import ProgressReporter
from ..obs.stream.rotate import RotatingJsonlSink
from ..obs.tsdb.series import Tsdb
from ..rng import RngStreams
from ..silicon.chipspec import CORES_PER_CHIP, ChipDraw, draw_chips
from ..workloads.base import IDLE
from ..workloads.ubench import UBENCH_SUITE
from .char_record import (
    CharRecorder,
    char_key,
    decode_char,
    replay_characterization,
)
from .characterize import Characterizer

#: Default chips per memory-bounded processing chunk.
DEFAULT_CHUNK_SIZE = 64

#: Quantiles reported for the limit distributions.
QUANTILES = (0.10, 0.50, 0.90)


def quantile_from_counts(counts: dict[int, int], q: float) -> int:
    """Nearest-rank quantile of an integer histogram (exact, streaming)."""
    if not counts:
        raise ConfigurationError("cannot take a quantile of an empty histogram")
    if not (0.0 <= q <= 1.0):
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts.values())
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for value in sorted(counts):
        cumulative += counts[value]
        if cumulative >= rank:
            return value
    return max(counts)


# Streaming min/mean/max accumulator (no sample retention).  Re-homed to
# the obs streaming layer and upgraded to an *exact* sum: plain float
# accumulation is not associative, so the old version's means could
# differ in the last ulp between chunkings — fatal for the rollup
# byte-identity contract.  The alias keeps the historical fleet name.
RunningStat = MergeableStat


@dataclass(frozen=True)
class FleetReport:
    """Streaming aggregate of one fleet characterization run."""

    n_chips: int
    n_cores: int
    chunk_size: int
    trials: int
    seed: int
    mode: MarginMode
    reduction_steps: int
    #: Histogram of per-core idle limits (safe reduction steps).
    idle_limit_counts: dict[int, int] = field(default_factory=dict)
    #: Histogram of per-core uBench limits.
    ubench_limit_counts: dict[int, int] = field(default_factory=dict)
    #: Histogram of per-core worst uBench rollbacks (steps given back).
    rollback_counts: dict[int, int] = field(default_factory=dict)
    cores_total: int = 0
    cores_rolled_back: int = 0
    probe_runs: int = 0
    baseline_freq_min_mhz: float = 0.0
    baseline_freq_mean_mhz: float = 0.0
    baseline_freq_max_mhz: float = 0.0
    tuned_freq_min_mhz: float = 0.0
    tuned_freq_mean_mhz: float = 0.0
    tuned_freq_max_mhz: float = 0.0

    @property
    def rollback_rate(self) -> float:
        """Fraction of cores whose uBench stage forced a rollback (Fig. 8)."""
        if self.cores_total == 0:
            raise ConfigurationError("report covers no cores")
        return self.cores_rolled_back / self.cores_total

    def limit_quantile(self, which: str, q: float) -> int:
        """Nearest-rank quantile of one of the step histograms."""
        counts = {
            "idle": self.idle_limit_counts,
            "ubench": self.ubench_limit_counts,
            "rollback": self.rollback_counts,
        }.get(which)
        if counts is None:
            raise ConfigurationError(
                f"unknown histogram {which!r}; use idle, ubench, or rollback"
            )
        return quantile_from_counts(counts, q)

    def metrics(self) -> dict[str, float]:
        """Flat metric dict (feeds the run manifest's result metrics)."""
        out = {
            "chips": float(self.n_chips),
            "cores": float(self.cores_total),
            "probe_runs": float(self.probe_runs),
            "rollback_rate": self.rollback_rate,
            "baseline_freq_mean_mhz": self.baseline_freq_mean_mhz,
            "tuned_freq_mean_mhz": self.tuned_freq_mean_mhz,
            "tuned_freq_min_mhz": self.tuned_freq_min_mhz,
            "tuned_freq_max_mhz": self.tuned_freq_max_mhz,
        }
        for name in ("idle", "ubench", "rollback"):
            for q in QUANTILES:
                out[f"{name}_p{int(round(q * 100)):02d}_steps"] = float(
                    self.limit_quantile(name, q)
                )
        return out

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (chunk-invariance is tested on this)."""
        return {
            "n_chips": self.n_chips,
            "n_cores": self.n_cores,
            "trials": self.trials,
            "seed": self.seed,
            "mode": self.mode.value,
            "reduction_steps": self.reduction_steps,
            "idle_limit_counts": {
                str(k): v for k, v in sorted(self.idle_limit_counts.items())
            },
            "ubench_limit_counts": {
                str(k): v for k, v in sorted(self.ubench_limit_counts.items())
            },
            "rollback_counts": {
                str(k): v for k, v in sorted(self.rollback_counts.items())
            },
            "metrics": {k: round(v, 6) for k, v in sorted(self.metrics().items())},
        }

    def render(self) -> str:
        """Operator-facing summary table."""
        def row(name: str, counts: dict[int, int]) -> tuple:
            total = sum(counts.values())
            mean = sum(k * v for k, v in counts.items()) / total
            return (
                name,
                min(counts),
                *(quantile_from_counts(counts, q) for q in QUANTILES),
                max(counts),
                round(mean, 2),
            )

        table = ascii_table(
            ("distribution", "min", "p10", "p50", "p90", "max", "mean"),
            [
                row("idle limit steps", self.idle_limit_counts),
                row("uBench limit steps", self.ubench_limit_counts),
                row("uBench rollback steps", self.rollback_counts),
            ],
            title=(
                f"fleet characterization: {self.n_chips} chips x "
                f"{self.n_cores} cores (seed {self.seed}, trials {self.trials}, "
                f"baseline {self.mode.value}+{self.reduction_steps})"
            ),
        )
        lines = [
            table,
            "",
            f"rollback rate: {100.0 * self.rollback_rate:.1f}% of "
            f"{self.cores_total} cores",
            f"baseline freq MHz: min {self.baseline_freq_min_mhz:.0f} / "
            f"mean {self.baseline_freq_mean_mhz:.0f} / "
            f"max {self.baseline_freq_max_mhz:.0f}",
            f"fine-tuned freq MHz: min {self.tuned_freq_min_mhz:.0f} / "
            f"mean {self.tuned_freq_mean_mhz:.0f} / "
            f"max {self.tuned_freq_max_mhz:.0f}",
            f"probe runs: {self.probe_runs}",
        ]
        return "\n".join(lines)


def _validate_fleet_args(
    n_chips: int,
    chunk_size: int,
    trials: int,
    n_cores: int,
    mode: MarginMode,
    reduction_steps: int,
) -> None:
    """Reject malformed fleet inputs before any chip is sampled.

    Mirrors the :meth:`ChipSim.uniform_assignments` validation style: the
    baseline row's mode/reduction combination is checked here so
    ``repro fleet`` fails fast instead of deep inside the first chunk.
    """
    if n_chips < 1:
        raise ConfigurationError(f"chips must be >= 1, got {n_chips}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if n_cores < 1:
        raise ConfigurationError(f"cores must be >= 1, got {n_cores}")
    if reduction_steps < 0:
        raise ConfigurationError(
            f"reduction_steps must be >= 0, got {reduction_steps}"
        )
    if mode is not MarginMode.ATM and reduction_steps != 0:
        raise ConfigurationError(
            f"reduction steps only apply to ATM mode, not {mode}"
        )


#: Workload runs per configuration step in fleet characterization (the
#: :class:`Characterizer` default; part of the characterization record's
#: content address).
_FLEET_REPEATS_PER_STEP = 2


def _characterize_chip(
    draw: ChipDraw,
    *,
    chip_seed: int,
    trials: int,
    noise_sigma_ps: float,
):
    """Characterize one drawn chip (the Fig. 6 idle → uBench stages).

    Fleet chip ``index`` is ``draw_chip(seed + index)`` with its own
    characterizer seeded the same way (``chip_seed``) — the shared
    per-chip recipe of :func:`characterize_fleet` and
    :func:`collect_chip_stats`, so both observe identical chips (and
    emit identical event streams) for a given seed.

    Returns ``(chip, idle, ubench, probe_count)``.  With a persistent
    store configured, a chip whose characterization record is already on
    disk is *replayed* — identical results and telemetry, no probes —
    and ``chip`` comes back ``None`` because no spec objects were
    materialized; a live characterization is recorded and written back
    (writable stores only).
    """
    store = get_store()
    key = None
    corrupt_before = 0
    if store is not None:
        key = char_key(
            draw,
            seed=chip_seed,
            trials=trials,
            repeats_per_step=_FLEET_REPEATS_PER_STEP,
            noise_sigma_ps=noise_sigma_ps,
            workloads=(IDLE, *UBENCH_SUITE),
        )
        corrupt_before = store.corrupt_entries
        payload = store.get(KIND_CHAR, key)
        if payload is not None:
            record = decode_char(payload)
            if record is not None and record["labels"] == list(draw.labels):
                idle, ubench, probes = replay_characterization(record, get_obs())
                publish_store_counters(
                    hits=1, corrupt=store.corrupt_entries - corrupt_before
                )
                return None, idle, ubench, probes

    chip = draw.materialize()
    recorder = (
        CharRecorder() if store is not None and store.writable else None
    )
    characterizer = Characterizer(
        RngStreams(chip_seed),
        trials=trials,
        noise_sigma_ps=noise_sigma_ps,
        recorder=recorder,
    )
    idle = {
        core.label: characterizer.characterize_idle(core)
        for core in chip.cores
    }
    ubench = {
        core.label: characterizer.characterize_ubench(
            core, idle[core.label].idle_limit
        )
        for core in chip.cores
    }
    probes = characterizer.total_probe_count
    if store is not None:
        wrote = False
        if recorder is not None:
            wrote = store.put(
                KIND_CHAR,
                key,
                recorder.encode(labels=draw.labels, probe_count=probes),
            )
        publish_store_counters(
            misses=1,
            writes=1 if wrote else 0,
            corrupt=store.corrupt_entries - corrupt_before,
        )
    return chip, idle, ubench, probes


def _validate_draw_rows(draw: ChipDraw, rows) -> None:
    """Replicate :meth:`ChipSim.validate_assignments` against a raw draw.

    The warm path never materializes the chip, so the same checks (and
    the exact same error messages) run against the draw's preset codes.
    """
    for row in rows:
        if len(row) != draw.n_cores:
            raise ConfigurationError(
                f"{draw.chip_id}: need {draw.n_cores} assignments, "
                f"got {len(row)}"
            )
        for label, preset, assignment in zip(
            draw.labels, draw.preset_codes, row
        ):
            if (
                assignment.mode is MarginMode.ATM
                and assignment.reduction_steps > preset
            ):
                raise ConfigurationError(
                    f"{label}: reduction {assignment.reduction_steps} exceeds "
                    f"preset {preset}"
                )


@dataclass(frozen=True)
class ChipStats:
    """Per-chip characterization digest (the fleet-health input row)."""

    chip_id: str
    n_cores: int
    idle_limit_counts: dict[int, int]
    ubench_limit_counts: dict[int, int]
    rollback_counts: dict[int, int]
    probe_runs: int

    @staticmethod
    def _mean(counts: dict[int, int]) -> float:
        total = sum(counts.values())
        if total == 0:
            raise ConfigurationError("chip stats cover no cores")
        return sum(step * count for step, count in counts.items()) / total

    @property
    def mean_idle_steps(self) -> float:
        return self._mean(self.idle_limit_counts)

    @property
    def mean_ubench_steps(self) -> float:
        return self._mean(self.ubench_limit_counts)

    @property
    def min_ubench_steps(self) -> int:
        return min(self.ubench_limit_counts)

    @property
    def max_rollback_steps(self) -> int:
        return max(self.rollback_counts)

    @property
    def rollback_rate(self) -> float:
        """Fraction of this chip's cores whose uBench stage rolled back."""
        rolled = sum(
            count for steps, count in self.rollback_counts.items() if steps > 0
        )
        return rolled / self.n_cores


def collect_chip_stats(
    n_chips: int,
    *,
    seed: int = 2019,
    trials: int = 4,
    n_cores: int = CORES_PER_CHIP,
    noise_sigma_ps: float = 0.1,
) -> tuple[ChipStats, ...]:
    """Per-chip limit/rollback digests over a sampled fleet.

    The characterization-only sibling of :func:`characterize_fleet`: same
    chips, same per-chip RNG streams, but no operating-point solves and
    no aggregation — the per-chip rows feed
    :mod:`repro.obs.analyze.fleet_health`'s outlier fences.
    """
    _validate_fleet_args(n_chips, 1, trials, n_cores, MarginMode.ATM, 0)
    stats = []
    for index, draw in zip(
        range(n_chips), draw_chips(seed, range(n_chips), n_cores=n_cores)
    ):
        _chip, idle, ubench, probes = _characterize_chip(
            draw,
            chip_seed=seed + index,
            trials=trials,
            noise_sigma_ps=noise_sigma_ps,
        )
        idle_counts: dict[int, int] = {}
        ubench_counts: dict[int, int] = {}
        rollback_counts: dict[int, int] = {}
        for label in draw.labels:
            limit = idle[label].idle_limit
            ub = ubench[label]
            idle_counts[limit] = idle_counts.get(limit, 0) + 1
            ubench_counts[ub.ubench_limit] = (
                ubench_counts.get(ub.ubench_limit, 0) + 1
            )
            rollback = ub.rollback_distribution.maximum
            rollback_counts[rollback] = rollback_counts.get(rollback, 0) + 1
        stats.append(
            ChipStats(
                chip_id=draw.chip_id,
                n_cores=draw.n_cores,
                idle_limit_counts=idle_counts,
                ubench_limit_counts=ubench_counts,
                rollback_counts=rollback_counts,
                probe_runs=probes,
            )
        )
    return tuple(stats)


class _FleetAccumulator:
    """Order-invariant fold state of a fleet run (the mergeable rollup).

    Every component is a commutative, associative function of the
    per-core observation multiset — integer counts and exact
    :class:`~repro.obs.stream.exact.MergeableStat` sums — so folding
    per-chunk partials in *any* order (serial chunk loop, ``--jobs N``
    pool completion order) produces the same :class:`FleetReport` bytes.
    """

    __slots__ = (
        "idle_counts",
        "ubench_counts",
        "rollback_counts",
        "cores_total",
        "cores_rolled_back",
        "probe_runs",
        "chips",
        "baseline_stat",
        "tuned_stat",
    )

    def __init__(self):
        self.idle_counts: dict[int, int] = {}
        self.ubench_counts: dict[int, int] = {}
        self.rollback_counts: dict[int, int] = {}
        self.cores_total = 0
        self.cores_rolled_back = 0
        self.probe_runs = 0
        self.chips = 0
        self.baseline_stat = MergeableStat()
        self.tuned_stat = MergeableStat()

    def merge_state(self, state: dict) -> None:
        """Fold one worker's :meth:`to_state` partial in."""
        for mine, theirs in (
            (self.idle_counts, state["idle_counts"]),
            (self.ubench_counts, state["ubench_counts"]),
            (self.rollback_counts, state["rollback_counts"]),
        ):
            for key, count in theirs.items():
                key = int(key)
                mine[key] = mine.get(key, 0) + int(count)
        self.cores_total += int(state["cores_total"])
        self.cores_rolled_back += int(state["cores_rolled_back"])
        self.probe_runs += int(state["probe_runs"])
        self.chips += int(state["chips"])
        self.baseline_stat.merge(MergeableStat.from_state(state["baseline_stat"]))
        self.tuned_stat.merge(MergeableStat.from_state(state["tuned_stat"]))

    def to_state(self) -> dict:
        """Picklable partial-summary form (what pool workers return)."""
        return {
            "idle_counts": dict(self.idle_counts),
            "ubench_counts": dict(self.ubench_counts),
            "rollback_counts": dict(self.rollback_counts),
            "cores_total": self.cores_total,
            "cores_rolled_back": self.cores_rolled_back,
            "probe_runs": self.probe_runs,
            "chips": self.chips,
            "baseline_stat": self.baseline_stat.to_state(),
            "tuned_stat": self.tuned_stat.to_state(),
        }


def _process_chunk(
    accumulator: _FleetAccumulator,
    chunk: range,
    *,
    seed: int,
    trials: int,
    n_cores: int,
    mode: MarginMode,
    reduction_steps: int,
    noise_sigma_ps: float,
    population: bool,
    obs: Observability,
    tsdb: Tsdb | None = None,
) -> None:
    """Characterize + solve one chunk of chips into ``accumulator``.

    Chips whose characterization and compiled tables are already in the
    persistent store never materialize spec objects: the chunk streams
    their draws straight into store-served :class:`CompiledChip` tables
    and plain assignment tuples, and the solve batch (the same
    :func:`solve_chips_cached` call either way) serves their converged
    states from disk too.  Cold chips run the live path and write every
    record back.
    """
    entries = []
    per_chip = []
    for index, draw in zip(chunk, draw_chips(seed, chunk, n_cores=n_cores)):
        chip, idle, ubench, probes = _characterize_chip(
            draw,
            chip_seed=seed + index,
            trials=trials,
            noise_sigma_ps=noise_sigma_ps,
        )
        tuned_reductions = [ubench[label].ubench_limit for label in draw.labels]
        if chip is not None:
            sim = ChipSim(chip)
            baseline_row = sim.uniform_assignments(
                mode=mode, reduction_steps=reduction_steps
            )
            tuned_row = sim.uniform_assignments(reductions=tuned_reductions)
            sim.validate_assignments(baseline_row)
            sim.validate_assignments(tuned_row)
            compiled = sim.compiled
        else:
            baseline_row = tuple(
                CoreAssignment(
                    workload=IDLE, mode=mode, reduction_steps=reduction_steps
                )
                for _ in draw.labels
            )
            tuned_row = tuple(
                CoreAssignment(workload=IDLE, reduction_steps=steps)
                for steps in tuned_reductions
            )
            _validate_draw_rows(draw, (baseline_row, tuned_row))
            compiled = compile_draw(draw)
        entries.append((compiled, [baseline_row, tuned_row], None))
        per_chip.append((draw, idle, ubench, probes))

    if population:
        states = solve_chips_cached(entries)
    else:
        # Chip-at-a-time A/B path: same per-entry batches ChipSim.solve_many
        # would submit.
        states = [solve_chips_cached([entry])[0] for entry in entries]

    if obs.enabled:
        # One registry lookup per instrument per chunk, not per chip.
        metrics = obs.metrics
        chips_counter = metrics.counter("fleet.chips")
        cores_counter = metrics.counter("fleet.cores")
        idle_hist = metrics.histogram("fleet.idle_limit_steps")
        rollback_hist = metrics.histogram("fleet.ubench_rollback_steps")
        tuned_gauge = metrics.gauge("fleet.tuned_slowest_mhz")

    for index, (draw, idle, ubench, probes), chip_states in zip(
        chunk, per_chip, states
    ):
        baseline_state, tuned_state = chip_states
        accumulator.probe_runs += probes
        accumulator.chips += 1
        for label in draw.labels:
            limit = idle[label].idle_limit
            ub = ubench[label]
            accumulator.idle_counts[limit] = (
                accumulator.idle_counts.get(limit, 0) + 1
            )
            accumulator.ubench_counts[ub.ubench_limit] = (
                accumulator.ubench_counts.get(ub.ubench_limit, 0) + 1
            )
            rollback = ub.rollback_distribution.maximum
            accumulator.rollback_counts[rollback] = (
                accumulator.rollback_counts.get(rollback, 0) + 1
            )
            accumulator.cores_total += 1
            if ub.needed_rollback:
                accumulator.cores_rolled_back += 1
        for freq in baseline_state.freqs_mhz:
            accumulator.baseline_stat.add(freq)
        for freq in tuned_state.freqs_mhz:
            accumulator.tuned_stat.add(freq)
        if obs.enabled:
            chips_counter.inc()
            cores_counter.inc(draw.n_cores)
            for label in draw.labels:
                idle_hist.observe(float(idle[label].idle_limit))
                rollback_hist.observe(
                    float(ubench[label].rollback_distribution.maximum)
                )
            # Tick = global chip index: partition-invariant, so the
            # gauge's "last" is the highest-index chip under any chunk
            # size or worker scheduling.
            tuned_gauge.set(float(tuned_state.slowest_mhz), tick=float(index))
        if tsdb is not None:
            _record_chip_series(
                tsdb, index, draw, idle, ubench, probes,
                baseline_state, tuned_state,
            )


def _record_chip_series(
    tsdb: Tsdb,
    index: int,
    draw: ChipDraw,
    idle: dict,
    ubench: dict,
    probes: int,
    baseline_state,
    tuned_state,
) -> None:
    """Fold one chip's characterization into the run's tsdb.

    The tick is the global chip index, so the windowed series are
    partition-invariant: any chunking or worker scheduling folds the same
    samples into the same windows, and alert evaluation over the tsdb is
    byte-identical across the serial/chunked/pooled matrix.
    """
    tick = float(index)
    baseline_mhz = float(baseline_state.slowest_mhz)
    tuned_mhz = float(tuned_state.slowest_mhz)
    tsdb.record("fleet.baseline_slowest_mhz", tick, baseline_mhz)
    tsdb.record("fleet.tuned_slowest_mhz", tick, tuned_mhz)
    tsdb.record("fleet.tuning_gain_mhz", tick, tuned_mhz - baseline_mhz)
    tsdb.record("fleet.probe_runs", tick, float(probes))
    for label in draw.labels:
        tsdb.record(
            "fleet.idle_limit_steps", tick, float(idle[label].idle_limit)
        )
        tsdb.record(
            "fleet.ubench_limit_steps", tick, float(ubench[label].ubench_limit)
        )
        tsdb.record(
            "fleet.ubench_rollback_steps",
            tick,
            float(ubench[label].rollback_distribution.maximum),
        )


def _characterize_chunk_worker(
    chunk_start: int,
    chunk_stop: int,
    seed: int,
    trials: int,
    n_cores: int,
    mode: MarginMode,
    reduction_steps: int,
    noise_sigma_ps: float,
    population: bool,
    collect_metrics: bool,
    store_root: str | None,
    tsdb_experiment: str | None,
    tsdb_window_ticks: float,
) -> tuple[dict, dict | None, int, dict | None, dict | None]:
    """Pool worker: fold one chunk into a picklable partial summary.

    Starts from a cold solve cache (scheduling must not leak into
    behaviour) and, when the parent run is observed, collects metrics
    into a private *streaming* registry behind a
    :class:`~repro.obs.sinks.NullSink` — mergeable summaries come home,
    per-event streams do not (worker interleaving would make them
    nondeterministic).

    ``store_root`` synchronizes the worker to the parent's persistent
    store, opened *read-only*: the store's compiled pages are shared
    zero-copy across the pool through the common mmap, and a worker that
    cannot serve a record recomputes it, so results never depend on
    which process handled a chunk.  The worker's store-counter delta is
    shipped home and folded into the parent store's stats.
    """
    store = configure_worker_store(store_root)
    stats_before = store.stats() if store is not None else None
    reset_solve_cache()
    accumulator = _FleetAccumulator()
    chunk = range(chunk_start, chunk_stop)
    tsdb = (
        Tsdb(tsdb_experiment, seed, window_ticks=tsdb_window_ticks)
        if tsdb_experiment is not None
        else None
    )
    kwargs = dict(
        seed=seed,
        trials=trials,
        n_cores=n_cores,
        mode=mode,
        reduction_steps=reduction_steps,
        noise_sigma_ps=noise_sigma_ps,
        population=population,
        tsdb=tsdb,
    )
    if collect_metrics:
        local_obs = Observability(
            NullSink(), metrics=MetricsRegistry(gauge_mode="streaming")
        )
        with observed(local_obs):
            _process_chunk(accumulator, chunk, obs=local_obs, **kwargs)
        registry_state = local_obs.metrics.to_state()
    else:
        disabled = Observability(sink=None)
        _process_chunk(accumulator, chunk, obs=disabled, **kwargs)
        registry_state = None
    store_delta = (
        diff_stats(store.stats(), stats_before) if store is not None else None
    )
    tsdb_state = tsdb.to_state() if tsdb is not None else None
    return (
        accumulator.to_state(),
        registry_state,
        len(chunk),
        store_delta,
        tsdb_state,
    )


def characterize_fleet(
    n_chips: int,
    *,
    seed: int = 2019,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    trials: int = 4,
    n_cores: int = CORES_PER_CHIP,
    mode: MarginMode = MarginMode.ATM,
    reduction_steps: int = 0,
    noise_sigma_ps: float = 0.1,
    population: bool = True,
    jobs: int = 1,
    progress: ProgressReporter | None = None,
    tsdb: Tsdb | None = None,
) -> FleetReport:
    """Run the Fig. 6 idle → uBench methodology over a sampled fleet.

    Chip ``i`` is ``sample_chip(seed + i)`` with its own characterizer
    seeded ``seed + i``, so the result is a pure function of ``seed`` and
    ``n_chips`` — the chunk size only bounds memory, and ``jobs`` only
    bounds wall-clock: chunks fold through order-invariant accumulators
    (exact sums, integer counts, mergeable streaming metrics), so the
    report and the metric summaries are byte-identical across any
    ``chunk_size`` and ``jobs`` combination.  ``mode`` and
    ``reduction_steps`` configure the *baseline* row each chip is solved
    at (the fine-tuned row always applies the chip's own uBench limits);
    ``population=False`` solves chip-at-a-time for A/B comparison.

    With ``jobs > 1`` under an enabled observability context the registry
    must be in streaming gauge mode (exact gauge traces cannot merge),
    and per-event streams are not captured — worker scheduling would
    interleave them nondeterministically.  ``progress`` (an operator-
    facing :class:`~repro.obs.stream.progress.ProgressReporter`) never
    touches artifacts.

    ``tsdb`` (a :class:`~repro.obs.tsdb.series.Tsdb`) receives per-chip
    ``fleet.*`` series ticked on the global chip index; pool workers fold
    private partial tsdbs back into it, so its state — and any alert
    evaluation over it — is chunking- and pool-invariant too.
    """
    _validate_fleet_args(
        n_chips, chunk_size, trials, n_cores, mode, reduction_steps
    )
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    obs = get_obs()
    if jobs > 1 and obs.enabled and obs.metrics.gauge_mode != "streaming":
        raise ConfigurationError(
            "jobs > 1 requires streaming metrics (exact gauge traces cannot "
            "merge across workers); run with --metrics-mode streaming"
        )
    if tsdb is not None and tsdb.seed != seed:
        raise ConfigurationError(
            f"tsdb is keyed on seed {tsdb.seed} but the fleet run uses "
            f"seed {seed}; series from different seeds must not merge"
        )

    accumulator = _FleetAccumulator()
    chunks = [
        range(start, min(start + chunk_size, n_chips))
        for start in range(0, n_chips, chunk_size)
    ]

    if jobs == 1:
        for chunk in chunks:
            _process_chunk(
                accumulator,
                chunk,
                seed=seed,
                trials=trials,
                n_cores=n_cores,
                mode=mode,
                reduction_steps=reduction_steps,
                noise_sigma_ps=noise_sigma_ps,
                population=population,
                obs=obs,
                tsdb=tsdb,
            )
            if progress is not None:
                progress.update(len(chunk))
    else:
        from ..experiments.runner import map_in_pool

        store = get_store()
        store_root = str(store.root) if store is not None else None

        def _on_result(
            result: tuple[dict, dict | None, int, dict | None, dict | None],
        ) -> None:
            if progress is not None:
                progress.update(result[2])

        partials = map_in_pool(
            _characterize_chunk_worker,
            [
                (
                    chunk.start,
                    chunk.stop,
                    seed,
                    trials,
                    n_cores,
                    mode,
                    reduction_steps,
                    noise_sigma_ps,
                    population,
                    obs.enabled,
                    store_root,
                    tsdb.experiment if tsdb is not None else None,
                    tsdb.window_ticks if tsdb is not None else 0.0,
                )
                for chunk in chunks
            ],
            jobs=jobs,
            on_result=_on_result,
        )
        for (
            accumulator_state,
            registry_state,
            _,
            store_delta,
            tsdb_state,
        ) in partials:
            accumulator.merge_state(accumulator_state)
            if registry_state is not None:
                obs.metrics.merge_state(registry_state)
            if store_delta is not None and store is not None:
                # Fold each worker's store traffic into the parent store's
                # counters so `repro store stats` covers the whole run.
                store.merge_stats(store_delta)
            if tsdb_state is not None and tsdb is not None:
                tsdb.merge_state(tsdb_state)

    return FleetReport(
        n_chips=n_chips,
        n_cores=n_cores,
        chunk_size=chunk_size,
        trials=trials,
        seed=seed,
        mode=mode,
        reduction_steps=reduction_steps,
        idle_limit_counts=accumulator.idle_counts,
        ubench_limit_counts=accumulator.ubench_counts,
        rollback_counts=accumulator.rollback_counts,
        cores_total=accumulator.cores_total,
        cores_rolled_back=accumulator.cores_rolled_back,
        probe_runs=accumulator.probe_runs,
        baseline_freq_min_mhz=accumulator.baseline_stat.minimum,
        baseline_freq_mean_mhz=accumulator.baseline_stat.mean,
        baseline_freq_max_mhz=accumulator.baseline_stat.maximum,
        tuned_freq_min_mhz=accumulator.tuned_stat.minimum,
        tuned_freq_mean_mhz=accumulator.tuned_stat.mean,
        tuned_freq_max_mhz=accumulator.tuned_stat.maximum,
    )


@dataclass(frozen=True)
class ObservedFleetRun:
    """Artifacts of one observed fleet characterization."""

    report: FleetReport
    manifest: RunManifest
    events_path: Path
    manifest_path: Path
    event_count: int


def run_fleet_observed(
    n_chips: int,
    *,
    out_dir: str | Path = "runs",
    seed: int = 2019,
    metrics_mode: str = "exact",
    segment_events: int = 0,
    **kwargs,
) -> ObservedFleetRun:
    """Run :func:`characterize_fleet` under full observability.

    Writes ``fleet.events.jsonl`` plus ``fleet.manifest.json`` into
    ``out_dir`` using the same canonical-artifact conventions as
    :func:`repro.experiments.common.run_observed`: cold solve cache, JSONL
    event stream, manifest with metric summary and event digest — two
    runs with the same arguments produce byte-identical artifacts.

    ``metrics_mode`` selects the registry's gauge mode: ``streaming``
    keeps O(sketch) memory per gauge instead of the full sample series
    (and is required for ``jobs > 1``).  ``segment_events > 0`` rotates
    the event stream through a
    :class:`~repro.obs.stream.rotate.RotatingJsonlSink` every that many
    events; the manifest digest covers the logical concatenation, so it
    is byte-identical to the single-file run.
    """
    reset_solve_cache()
    target_dir = Path(out_dir)
    target_dir.mkdir(parents=True, exist_ok=True)
    events_path = target_dir / "fleet.events.jsonl"
    manifest_path = target_dir / "fleet.manifest.json"

    sink: JsonlFileSink | RotatingJsonlSink
    if segment_events > 0:
        sink = RotatingJsonlSink(
            events_path, max_events_per_segment=segment_events
        )
    else:
        sink = JsonlFileSink(events_path)
    obs = Observability(sink, metrics=MetricsRegistry(gauge_mode=metrics_mode))
    try:
        with observed(obs):
            report = characterize_fleet(n_chips, seed=seed, **kwargs)
        metrics_summary = obs.metrics.to_summary()
    finally:
        obs.close()

    manifest = build_manifest(
        "fleet",
        seed,
        result_metrics=report.metrics(),
        metrics_summary=metrics_summary,
        events_path=(
            sink.index_path if isinstance(sink, RotatingJsonlSink) else events_path
        ),
        event_count=sink.count,
    )
    save_manifest(manifest, manifest_path)
    return ObservedFleetRun(
        report=report,
        manifest=manifest,
        events_path=events_path,
        manifest_path=manifest_path,
        event_count=sink.count,
    )
