"""Per-core frequency predictor: f̄ = −k′·P̄ + b (paper Eq. 1, Fig. 12a).

On a fine-tuned ATM system, a core's sustained frequency is governed by
long-term supply effects — dominated by the IR voltage drop, which is
proportional to total chip power — while transient di/dt events are
absorbed by the control loop.  Subtracting the IR drop from the regulator
voltage makes average frequency *linear in total chip power*, with the
intercept ``b`` encoding the core's static CPM configuration and the slope
``k′`` the shared power-delivery resistance (≈ 2 MHz/W on the testbed).

:func:`fit_core_frequency_models` produces the training sweep the paper's
deployment would gather (vary the number of active co-runners, record
<chip power, core frequency> pairs) and fits one predictor per core.  In
practice each core stores its model and the runtime indexes it by the
chip's measured power.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.fitting import LinearFit, fit_linear
from ..atm.chip_sim import ChipSim, CoreAssignment, MarginMode
from ..errors import CalibrationError, ConfigurationError
from ..workloads.base import IDLE, Workload
from ..workloads.ubench import DAXPY_SMT4


@dataclass(frozen=True)
class CoreFrequencyPredictor:
    """Fitted Eq. 1 model for one core at one CPM configuration."""

    core_label: str
    reduction_steps: int
    fit: LinearFit

    @property
    def mhz_per_watt(self) -> float:
        """Frequency lost per watt of total chip power (positive number)."""
        return -self.fit.slope

    def predict_mhz(self, chip_power_w: float) -> float:
        """Predicted sustained frequency at the given total chip power."""
        if chip_power_w < 0.0:
            raise ConfigurationError(f"power must be >= 0, got {chip_power_w}")
        return self.fit.predict(chip_power_w)

    def power_budget_w_for_mhz(self, target_mhz: float) -> float:
        """Largest total chip power at which the core still reaches target.

        The inverse query the management layer relies on: a critical
        application's QoS target maps to a frequency, which maps to the
        chip power budget its co-runners must respect.
        """
        if target_mhz <= 0.0:
            raise ConfigurationError(f"target must be positive, got {target_mhz}")
        budget = self.fit.invert(target_mhz)
        if budget <= 0.0:
            raise CalibrationError(
                f"{self.core_label}: target {target_mhz:.0f} MHz is unreachable "
                f"at any power (budget {budget:.1f} W)"
            )
        return budget


def frequency_power_sweep(
    sim: ChipSim,
    core_index: int,
    reductions: tuple[int, ...] | list[int],
    *,
    load_workload: Workload = DAXPY_SMT4,
    observed_workload: Workload = IDLE,
) -> list[tuple[float, float]]:
    """Collect <chip power, core frequency> samples for one core.

    The sweep holds ``core_index`` on a light observed workload at its
    assigned reduction while activating 0..N-1 co-runner cores on a
    high-power load (the paper varies co-located daxpy threads), then
    solves the chip's steady state for each point.
    """
    chip = sim.chip
    if not (0 <= core_index < chip.n_cores):
        raise ConfigurationError(
            f"core_index must be in [0, {chip.n_cores}), got {core_index}"
        )
    if len(reductions) != chip.n_cores:
        raise ConfigurationError(f"reductions must have {chip.n_cores} entries")
    others = [i for i in range(chip.n_cores) if i != core_index]
    rows = []
    for active_count in range(len(others) + 1):
        loaded = set(others[:active_count])
        assignments = []
        for index in range(chip.n_cores):
            if index == core_index:
                workload = observed_workload
            elif index in loaded:
                workload = load_workload
            else:
                workload = IDLE
            assignments.append(
                CoreAssignment(
                    workload=workload,
                    mode=MarginMode.ATM,
                    reduction_steps=reductions[index],
                )
            )
        rows.append(assignments)
    # All sweep points are independent rows of one batched solve; the rows
    # differ only in co-runner count, so they converge in lockstep.
    states = sim.solve_many(rows)
    return [
        (state.chip_power_w, state.core_freq_mhz(core_index)) for state in states
    ]


def fit_core_frequency_models(
    sim: ChipSim,
    reductions: tuple[int, ...] | list[int],
) -> dict[str, CoreFrequencyPredictor]:
    """Fit one Eq. 1 predictor per core of a chip.

    ``reductions`` is the deployed per-core CPM configuration (typically
    the thread-worst row of the limit table).
    """
    predictors = {}
    for index, core in enumerate(sim.chip.cores):
        samples = frequency_power_sweep(sim, index, reductions)
        powers = [s[0] for s in samples]
        freqs = [s[1] for s in samples]
        fit = fit_linear(powers, freqs)
        if fit.slope >= 0.0:
            raise CalibrationError(
                f"{core.label}: frequency-vs-power slope must be negative, "
                f"got {fit.slope:.4f}"
            )
        predictors[core.label] = CoreFrequencyPredictor(
            core_label=core.label,
            reduction_steps=reductions[index],
            fit=fit,
        )
    return predictors
