"""Module entry point: ``python -m repro.lint [paths]``."""

import sys

from .cli import main

sys.exit(main())
