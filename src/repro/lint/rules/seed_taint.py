"""RL010 — seed-provenance taint rule.

RL001 bans direct ``np.random``/stdlib ``random`` *call sites* inside the
package; this rule generalizes the contract to *flows*: an RNG value not
derived from :class:`repro.rng.RngStreams` (or an explicit seed) must not
reach the deterministic physics in ``atm/``, ``core/``, ``experiments/``,
or ``fastpath/`` — even through layers of helpers that RL001 cannot see
across.  The taint engine lives in :mod:`repro.lint.dataflow.taint`.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..engine import Finding, ProjectRule


class SeedTaintRule(ProjectRule):
    """RL010: only RngStreams-derived randomness may reach the physics."""

    rule_id = "RL010"
    severity = "error"
    summary = "seed-provenance"
    rationale = (
        "an unseeded generator laundered through two helpers decorrelates "
        "same-seed runs without failing any test; taint analysis follows "
        "the value, not the call site"
    )

    def check(self, project) -> Iterable[Finding]:
        from ..dataflow.taint import TaintAnalysis

        for path, line, col, message in TaintAnalysis(project).check_all():
            yield self.finding(path, line, col, message)
