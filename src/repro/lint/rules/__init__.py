"""Rule registry for ``repro.lint``.

Rules are stateless singletons; the engine dispatches AST nodes to them
by declared interest.  Register new rules here so the CLI, the process-
pool workers, and ``--list-rules`` all see the same set.
"""

from __future__ import annotations

from ...errors import LintError
from ..engine import Rule
from .constants import MagicPlatformConstantRule
from .determinism import UnseededRngRule, WallClockRule
from .exceptions import BareExceptionRule
from .float_eq import FloatEqualityRule
from .printing import DirectPrintRule
from .process import ProcessUnsafeParallelRule
from .units_suffix import UnitSuffixRule

#: Every shipped rule, in id order.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRngRule(),
    WallClockRule(),
    BareExceptionRule(),
    UnitSuffixRule(),
    FloatEqualityRule(),
    MagicPlatformConstantRule(),
    DirectPrintRule(),
    ProcessUnsafeParallelRule(),
)

_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}


def get_rules(rule_ids: list[str] | None = None) -> tuple[Rule, ...]:
    """Resolve ``rule_ids`` to rule objects; ``None`` selects every rule."""
    if rule_ids is None:
        return ALL_RULES
    missing = [rule_id for rule_id in rule_ids if rule_id not in _BY_ID]
    if missing:
        known = ", ".join(sorted(_BY_ID))
        raise LintError(f"unknown rule id(s) {missing}; known rules: {known}")
    return tuple(_BY_ID[rule_id] for rule_id in rule_ids)


__all__ = ["ALL_RULES", "get_rules"]
