"""Rule registry for ``repro.lint``.

Rules are stateless singletons; the engine dispatches AST nodes to them
by declared interest.  Register new rules here so the CLI, the process-
pool workers, and ``--list-rules`` all see the same set.
"""

from __future__ import annotations

from ...errors import LintError
from ..engine import ProjectRule, Rule
from .alert_hygiene import AlertRuleHygieneRule
from .constants import MagicPlatformConstantRule
from .dead_api import DeadPublicApiRule
from .determinism import UnseededRngRule, WallClockRule
from .exceptions import BareExceptionRule
from .float_eq import FloatEqualityRule
from .obs_contract import ObsContractRule
from .printing import DirectPrintRule
from .process import ProcessUnsafeParallelRule
from .seed_taint import SeedTaintRule
from .units_suffix import UnitSuffixRule
from .unit_flow import UnitFlowRule

#: Every shipped per-file rule, in id order.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRngRule(),
    WallClockRule(),
    BareExceptionRule(),
    UnitSuffixRule(),
    FloatEqualityRule(),
    MagicPlatformConstantRule(),
    DirectPrintRule(),
    ProcessUnsafeParallelRule(),
    AlertRuleHygieneRule(),
)

#: Every shipped project-wide (``--project``) rule, in id order.
PROJECT_RULES: tuple[ProjectRule, ...] = (
    UnitFlowRule(),
    SeedTaintRule(),
    ObsContractRule(),
    DeadPublicApiRule(),
)

_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}
_PROJECT_BY_ID = {rule.rule_id: rule for rule in PROJECT_RULES}


def get_rules(rule_ids: list[str] | None = None) -> tuple[Rule, ...]:
    """Resolve ``rule_ids`` to per-file rule objects; ``None`` selects all."""
    if rule_ids is None:
        return ALL_RULES
    missing = [rule_id for rule_id in rule_ids if rule_id not in _BY_ID]
    if missing:
        known = ", ".join(sorted(_BY_ID))
        raise LintError(f"unknown rule id(s) {missing}; known rules: {known}")
    return tuple(_BY_ID[rule_id] for rule_id in rule_ids)


def get_project_rules(
    rule_ids: list[str] | None = None,
) -> tuple[ProjectRule, ...]:
    """Resolve ``rule_ids`` to project rules; ``None`` selects all."""
    if rule_ids is None:
        return PROJECT_RULES
    missing = [rid for rid in rule_ids if rid not in _PROJECT_BY_ID]
    if missing:
        known = ", ".join(sorted(_PROJECT_BY_ID))
        raise LintError(
            f"unknown project rule id(s) {missing}; known rules: {known}"
        )
    return tuple(_PROJECT_BY_ID[rule_id] for rule_id in rule_ids)


__all__ = ["ALL_RULES", "PROJECT_RULES", "get_rules", "get_project_rules"]
