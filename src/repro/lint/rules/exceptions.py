"""RL003 — error-handling rule.

Every exception the library raises derives from ``ReproError`` so callers
can fence off the whole package with one ``except`` clause and still
distinguish configuration mistakes from modeled hardware failures
(``repro.errors``).  Raising builtins — or swallowing everything with a
bare ``except:`` — breaks that contract silently.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule

#: Builtin exception types the library must never raise directly.
#: ``NotImplementedError`` is exempt: it is the stdlib idiom for abstract
#: methods and is not an error-path signal callers should catch.
FORBIDDEN_BUILTINS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "NameError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


class BareExceptionRule(Rule):
    """RL003: raise ``ReproError`` subclasses; never use bare ``except:``."""

    rule_id = "RL003"
    severity = "error"
    summary = "bare-exception"
    rationale = (
        "raises must derive from ReproError so callers can separate library "
        "errors from modeled hardware failures; bare except hides both"
    )
    interests = (ast.Raise, ast.ExceptHandler)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` swallows SystemExit and KeyboardInterrupt; "
                    "catch ReproError (or a concrete subclass) instead",
                )
            return
        exc = node.exc
        if exc is None:
            return  # bare `raise` re-raises the active exception: fine
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in FORBIDDEN_BUILTINS:
            yield self.finding(
                ctx,
                node,
                f"raising builtin {name}; library errors must derive from "
                "ReproError (repro.errors)",
            )
