"""RL001/RL002 — determinism rules.

Reproducing the paper's per-core limit distributions (Table I, Fig. 7-14)
requires every stochastic draw to be replayable and every timestamp to
come from simulated time.  A single unseeded generator or host-clock read
silently decorrelates runs without failing any test.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule


def attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Resolve a dotted ``Name.attr.attr`` chain, or ``None`` if dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class UnseededRngRule(Rule):
    """RL001: all randomness must flow through named ``RngStreams``."""

    rule_id = "RL001"
    severity = "error"
    summary = "unseeded-rng"
    rationale = (
        "direct np.random / random draws bypass the named-stream seeding "
        "that keeps Fig. 7-14 reproducible and stable under refactoring"
    )
    interests = (ast.Attribute, ast.Import, ast.ImportFrom)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test and ctx.filename != "rng.py"

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if (
                chain is not None
                and len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                # Class references (Generator, SeedSequence, ...) are type
                # annotations, not draws; only lowercase accesses construct
                # or consume entropy.
                and chain[2][:1].islower()
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct use of {'.'.join(chain)}; draw from a named "
                    "RngStreams stream instead (repro.rng)",
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib `random` is process-seeded; use RngStreams "
                        "(repro.rng) for reproducible draws",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield self.finding(
                    ctx,
                    node,
                    "stdlib `random` is process-seeded; use RngStreams "
                    "(repro.rng) for reproducible draws",
                )


#: Host-clock reading functions in the ``time`` module.
_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Host-clock constructors on ``datetime`` / ``datetime.datetime``.
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    """RL002: simulation modules must not read the host clock."""

    rule_id = "RL002"
    severity = "error"
    summary = "wall-clock-in-sim"
    rationale = (
        "simulated time (ns/ms event clocks) is the only time source; host "
        "clock reads make traces machine- and load-dependent"
    )
    interests = (ast.Attribute, ast.ImportFrom)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is None:
                return
            if chain[0] == "time" and len(chain) == 2 and chain[1] in _TIME_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"host clock read {'.'.join(chain)}; simulation code "
                    "must advance simulated time only",
                )
            elif chain[0] == "datetime" and chain[-1] in _DATETIME_FNS:
                yield self.finding(
                    ctx,
                    node,
                    f"host clock read {'.'.join(chain)}; simulation code "
                    "must advance simulated time only",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "time":
                clocky = sorted(
                    alias.name for alias in node.names if alias.name in _TIME_FNS
                )
                if clocky:
                    yield self.finding(
                        ctx,
                        node,
                        f"importing host clock function(s) {', '.join(clocky)} "
                        "from `time`; simulation code must advance simulated "
                        "time only",
                    )
