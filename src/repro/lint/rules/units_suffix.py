"""RL004 — unit-suffix rule.

The library's internal unit table (``repro.units``) only protects against
MHz-vs-ps mixups if quantity-valued names *say* their unit.  This rule
checks public function signatures: a ``float`` parameter (or return) whose
name names a physical quantity must end in the matching unit suffix.

The check is deliberately heuristic: names are split on underscores, the
first component that is a known quantity word selects the expected suffix
set, and a small allowlist covers idioms where the quantity word does not
denote a quantity (e.g. the alpha-power law).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule

_FREQ = frozenset({"hz", "khz", "mhz", "ghz"})
_TIME = frozenset({"ps", "ns", "us", "ms", "s", "years"})
_VOLT = frozenset({"v", "mv"})
_POWER = frozenset({"w", "mw", "kw"})
_TEMP = frozenset({"c", "k"})
_ENERGY = frozenset({"j", "mj", "wh"})
_CURRENT = frozenset({"a", "ma"})

#: Quantity word -> acceptable unit suffixes (the name's last component).
QUANTITY_SUFFIXES: dict[str, frozenset[str]] = {
    "freq": _FREQ,
    "freqs": _FREQ,
    "frequency": _FREQ,
    "frequencies": _FREQ,
    "delay": _TIME,
    "delays": _TIME,
    "latency": _TIME,
    "period": _TIME,
    "duration": _TIME,
    "voltage": _VOLT,
    "voltages": _VOLT,
    "vdd": _VOLT,
    "droop": _VOLT,
    "power": _POWER,
    "temp": _TEMP,
    "temperature": _TEMP,
    "temperatures": _TEMP,
    "energy": _ENERGY,
    "current": _CURRENT,
}

#: Last name components marking a dimensionless derived value (a ratio of
#: quantities needs no unit suffix).
DIMENSIONLESS_TAILS = frozenset(
    {
        "count",
        "exponent",
        "factor",
        "fraction",
        "gain",
        "index",
        "norm",
        "pct",
        "percent",
        "ratio",
        "scale",
        "slope",
        "speedup",
    }
)

#: Exact function names exempt from the return-suffix check.  Entries must
#: carry a justification; prefer renaming when the name really is a
#: quantity.
NAME_ALLOWLIST = frozenset(
    {
        # alpha-power MOSFET delay law: "power" is an exponent, not watts.
        "alpha_power_delay_factor",
        # unit-conversion helpers whose names *are* the unit.
        "millivolts",
    }
)

#: Exact parameter names that are self-describing quantities.  ``vdd`` is
#: the supply-rail name and is always volts in this library (mirroring
#: ``repro.units.NOMINAL_VDD``); forcing ``vdd_v`` everywhere adds noise
#: without removing ambiguity.
PARAM_ALLOWLIST = frozenset({"vdd"})


def _is_float_annotation(node: ast.expr | None) -> bool:
    """True for ``float`` and optional forms like ``float | None``."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value == "float"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_float_annotation(node.left) or _is_float_annotation(node.right)
    return False


def expected_suffixes(name: str) -> tuple[str, frozenset[str]] | None:
    """Return ``(quantity_word, suffixes)`` when ``name`` needs one, else None.

    A name passes when any underscore component carries a suffix from the
    set selected by the first quantity word found in it (this accepts
    compound names like ``latency_ms_at`` and ratio names like
    ``delay_sensitivity_ps_per_v``), or when it ends in a dimensionless
    tail such as ``_factor`` or ``_ratio``.
    """
    components = name.lower().split("_")
    if components[-1] in DIMENSIONLESS_TAILS:
        return None
    for component in components:
        suffixes = QUANTITY_SUFFIXES.get(component)
        if suffixes is None:
            continue
        if any(candidate in suffixes for candidate in components):
            return None
        return component, suffixes
    return None


class UnitSuffixRule(Rule):
    """RL004: quantity-valued floats in public signatures carry unit suffixes."""

    rule_id = "RL004"
    severity = "warning"
    summary = "unit-suffix"
    rationale = (
        "a float named `freq` can hold MHz or ps without any test noticing; "
        "suffixes make the unit part of the contract"
    )
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in PARAM_ALLOWLIST:
                continue
            needed = expected_suffixes(arg.arg)
            if needed and _is_float_annotation(arg.annotation):
                word, suffixes = needed
                yield self.finding(
                    ctx,
                    arg,
                    f"float parameter `{arg.arg}` names a {word} quantity but "
                    f"lacks a unit suffix ({self._fmt(suffixes)})",
                )
        if node.name in NAME_ALLOWLIST:
            return
        needed = expected_suffixes(node.name)
        if needed and _is_float_annotation(node.returns):
            word, suffixes = needed
            yield self.finding(
                ctx,
                node,
                f"function `{node.name}` returns a float {word} quantity but "
                f"its name lacks a unit suffix ({self._fmt(suffixes)})",
            )

    @staticmethod
    def _fmt(suffixes: frozenset[str]) -> str:
        return "expected one of: " + ", ".join(
            f"_{suffix}" for suffix in sorted(suffixes)
        )
