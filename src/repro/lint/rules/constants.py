"""RL006 — magic-platform-constant rule.

``repro.units`` is the single source of truth for the POWER7+ platform
numbers (Sec. II of the paper).  A literal ``4200.0`` sprinkled elsewhere
silently forks that truth: retargeting the model (e.g. the POWER9 ATM
variant in the ROADMAP) would update ``units.py`` and miss the copy.

Float platform values are flagged wherever they appear; the collision-
prone small integers (8 cores, 2 chips) are only flagged when bound to a
core/chip-flavored name (keyword argument, assignment target, or
parameter default), which keeps ``range(2)`` and friends out of scope.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence

from ... import units
from ..engine import Finding, LintContext, Rule

#: Distinctive float platform values -> canonical constant name.  Ambient
#: values like 40.0 or 32.0 collide with unrelated quantities and are
#: deliberately excluded from the heuristic.
FLOAT_CONSTANTS: dict[float, str] = {
    units.STATIC_MARGIN_MHZ: "STATIC_MARGIN_MHZ (== DVFS_MAX_MHZ)",
    units.DEFAULT_ATM_IDLE_MHZ: "DEFAULT_ATM_IDLE_MHZ",
    units.DVFS_MIN_MHZ: "DVFS_MIN_MHZ",
    units.NOMINAL_VDD: "NOMINAL_VDD",
    units.STRESSMARK_CHIP_POWER_W: "STRESSMARK_CHIP_POWER_W",
}

#: Small-integer platform values, only matched in core/chip-named contexts.
INT_CONSTANTS: dict[int, str] = {
    units.CORES_PER_CHIP: "CORES_PER_CHIP",
    units.CHIPS_PER_SERVER: "CHIPS_PER_SERVER",
}

#: Binding names that mark an integer as a core/chip topology count.
_TOPOLOGY_NAME_RE = re.compile(r"(^|_)(n_)?(cores?|chips?)(_|$)")


def _int_match(name: str | None, value_node: ast.expr | None) -> str | None:
    """Constant name when ``value_node`` is a flagged int bound to ``name``."""
    if name is None or value_node is None:
        return None
    if not _TOPOLOGY_NAME_RE.search(name.lower()):
        return None
    if (
        isinstance(value_node, ast.Constant)
        and type(value_node.value) is int
        and value_node.value in INT_CONSTANTS
    ):
        return INT_CONSTANTS[value_node.value]
    return None


class MagicPlatformConstantRule(Rule):
    """RL006: platform numbers must reference ``repro.units`` constants."""

    rule_id = "RL006"
    severity = "warning"
    summary = "magic-platform-constant"
    rationale = (
        "repro.units is the single source of truth for POWER7+ numbers; "
        "literal copies silently fork it"
    )
    interests = (
        ast.Constant,
        ast.Call,
        ast.Assign,
        ast.AnnAssign,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
    )

    def applies(self, ctx: LintContext) -> bool:
        return (
            ctx.in_repro_src and not ctx.is_test and ctx.filename != "units.py"
        )

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float) and node.value in FLOAT_CONSTANTS:
                yield self.finding(
                    ctx,
                    node,
                    f"magic platform constant {node.value!r}; use "
                    f"repro.units.{FLOAT_CONSTANTS[node.value]}",
                )
            return
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                const = _int_match(keyword.arg, keyword.value)
                if const:
                    yield self.finding(
                        ctx,
                        keyword.value,
                        f"magic platform count {keyword.arg}="
                        f"{ast.literal_eval(keyword.value)}; use "
                        f"repro.units.{const}",
                    )
            return
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                const = _int_match(node.targets[0].id, node.value)
                if const:
                    yield self.finding(
                        ctx,
                        node.value,
                        f"magic platform count {node.targets[0].id}="
                        f"{ast.literal_eval(node.value)}; use "
                        f"repro.units.{const}",
                    )
            return
        if isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                const = _int_match(node.target.id, node.value)
                if const:
                    yield self.finding(
                        ctx,
                        node.value,
                        f"magic platform count {node.target.id}="
                        f"{ast.literal_eval(node.value)}; use "
                        f"repro.units.{const}",
                    )
            return
        # Function defaults: pair the trailing args with their defaults.
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        positional = (*args.posonlyargs, *args.args)
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            const = _int_match(arg.arg, default)
            if const:
                yield self.finding(
                    ctx,
                    default,
                    f"magic platform count {arg.arg}="
                    f"{ast.literal_eval(default)}; use repro.units.{const}",
                )
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            const = _int_match(arg.arg, default)
            if const:
                yield self.finding(
                    ctx,
                    default,
                    f"magic platform count {arg.arg}="
                    f"{ast.literal_eval(default)}; use repro.units.{const}",
                )
