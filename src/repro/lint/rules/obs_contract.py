"""RL011 — observability contract rule.

The obs pipeline's byte-identical guarantee rests on three conventions
this rule checks statically, project-wide:

1. **Complete events** — constructing an :class:`~repro.obs.events.ObsEvent`
   subclass must supply every required field (and no unknown ones);
   dataclasses only raise at runtime, and only when a sink is attached.
2. **Canonical JSON** — every ``json.dumps`` call in the package must pass
   ``sort_keys=True``; unsorted keys make artifacts depend on dict
   insertion history instead of content.
3. **Balanced spans** — ``tracer.span(...)`` builds a context manager; a
   call that is not the context expression of a ``with`` never enters or
   exits, silently dropping the span (and any nesting under it).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..dataflow.symbols import ClassInfo, ModuleInfo, dotted_name
from ..engine import Finding, ProjectRule


def _event_classes(project) -> dict[str, ClassInfo]:
    """Qualname -> ClassInfo for every ObsEvent subclass in the project."""
    classes: dict[str, ClassInfo] = {}
    for module in project.all_modules:
        for cls in module.classes.values():
            if project.inherits_from(cls, "ObsEvent"):
                classes[cls.qualname] = cls
    return classes


def _with_context_calls(tree: ast.Module) -> set[int]:
    """ids of Call nodes used directly as a ``with`` context expression."""
    used: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    used.add(id(item.context_expr))
    return used


class ObsContractRule(ProjectRule):
    """RL011: event fields, canonical JSON, and span balance."""

    rule_id = "RL011"
    severity = "error"
    summary = "obs-contract"
    rationale = (
        "the obs guarantee is same seed => byte-identical artifacts; "
        "incomplete events, unsorted JSON, and unentered spans each break "
        "it without failing a unit test"
    )

    def check(self, project) -> Iterable[Finding]:
        events = _event_classes(project)
        for module in project.modules:
            yield from self._check_module(project, module, events)

    def _check_module(
        self, project, module: ModuleInfo, events: dict[str, ClassInfo]
    ) -> Iterable[Finding]:
        with_calls = _with_context_calls(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_event_call(project, module, node, events)
            yield from self._check_json_dumps(project, module, node)
            yield from self._check_span(module, node, with_calls)

    # -- 1. complete events ------------------------------------------------

    def _check_event_call(
        self,
        project,
        module: ModuleInfo,
        call: ast.Call,
        events: dict[str, ClassInfo],
    ) -> Iterable[Finding]:
        resolution = project.resolve_call_target(module, call.func)
        if resolution is None or resolution.kind != "class":
            return
        cls: ClassInfo = resolution.value
        if cls.qualname not in events:
            return
        params = project.constructor_params(cls)
        if params is None:
            return
        if any(isinstance(arg, ast.Starred) for arg in call.args) or any(
            keyword.arg is None for keyword in call.keywords
        ):
            return  # splats defeat static checking (event_from_dict)
        supplied = {param.name for param in params[: len(call.args)]}
        known = {param.name for param in params}
        for keyword in call.keywords:
            if keyword.arg not in known:
                yield self.finding(
                    module.path,
                    keyword.value.lineno,
                    keyword.value.col_offset,
                    f"`{cls.name}` has no field `{keyword.arg}` "
                    "(event document would fail round-trip)",
                )
            else:
                supplied.add(keyword.arg)
        missing = [
            param.name
            for param in params
            if not param.has_default and param.name not in supplied
        ]
        if missing:
            yield self.finding(
                module.path,
                call.lineno,
                call.col_offset,
                f"`{cls.name}` emission misses required field(s) "
                f"{', '.join(sorted(missing))}",
            )

    # -- 2. canonical JSON ---------------------------------------------------

    def _check_json_dumps(
        self, project, module: ModuleInfo, call: ast.Call
    ) -> Iterable[Finding]:
        resolution = project.resolve_call_target(module, call.func)
        if resolution is None or resolution.kind != "external":
            return
        if str(resolution.value) != "json.dumps":
            return
        for keyword in call.keywords:
            if keyword.arg is None:
                return  # **kwargs may carry sort_keys
            if keyword.arg == "sort_keys":
                if (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return
                break
        yield self.finding(
            module.path,
            call.lineno,
            call.col_offset,
            "json.dumps without sort_keys=True bypasses canonical JSON; "
            "artifact bytes would depend on dict insertion order",
        )

    # -- 3. balanced spans ---------------------------------------------------

    def _check_span(
        self, module: ModuleInfo, call: ast.Call, with_calls: set[int]
    ) -> Iterable[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != "span":
            return
        receiver = dotted_name(func.value)
        if receiver is None or "tracer" not in receiver.lower():
            return
        if id(call) in with_calls:
            return
        yield self.finding(
            module.path,
            call.lineno,
            call.col_offset,
            f"`{receiver}.span(...)` outside a `with` statement never "
            "enters or exits; the span (and everything nested under it) "
            "is silently dropped",
        )
