"""RL005 — float-equality rule.

Exact ``==``/``!=`` on *computed* float expressions is how calibration
drift hides: ``a / b == 0.3`` is false for values that agree to 15
significant digits.  The rule flags equality comparisons where either side
is float arithmetic (any division, or ``+ - * ** %`` involving a float
literal) and suggests ``math.isclose`` / ``pytest.approx``.

Plain sentinel comparisons (``x == 0.0``, ``freq == 2100.0``) compare a
value that flowed through unchanged and are left alone — flagging them
would bury the real signal in noise.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Mod)


def _contains_float_literal(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Constant) and isinstance(child.value, float)
        for child in ast.walk(node)
    )


def is_float_arithmetic(node: ast.AST) -> bool:
    """True for expressions whose value carries fresh rounding error."""
    if isinstance(node, ast.UnaryOp):
        return is_float_arithmetic(node.operand)
    if not isinstance(node, ast.BinOp):
        return False
    if isinstance(node.op, ast.Div):
        return True  # true division always produces a float
    if isinstance(node.op, _ARITH_OPS):
        return _contains_float_literal(node) or any(
            is_float_arithmetic(side) for side in (node.left, node.right)
        )
    return False


class FloatEqualityRule(Rule):
    """RL005: no exact equality on computed float expressions."""

    rule_id = "RL005"
    severity = "warning"
    summary = "float-equality"
    rationale = (
        "== on computed floats is rounding-error roulette; use math.isclose "
        "in library code and pytest.approx in tests"
    )
    interests = (ast.Compare,)

    # Applies to src *and* tests: golden assertions are where exact float
    # comparisons do the most damage.
    def applies(self, ctx: LintContext) -> bool:
        return True

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        if any(
            is_float_arithmetic(side) for side in (node.left, *node.comparators)
        ):
            yield self.finding(
                ctx,
                node,
                "exact ==/!= on a computed float expression; use "
                "math.isclose (src) or pytest.approx (tests)",
            )
