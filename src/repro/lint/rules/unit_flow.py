"""RL009 — interprocedural unit-mismatch rule.

RL004 makes quantity names *say* their unit; this rule makes the program
*respect* what the names say: adding, comparing, assigning, passing, or
returning a value across two different stated units is reported wherever
the flow happens — including through function summaries, so a ``_mhz``
expression reaching a ``_v`` parameter two calls away is caught at the
call site.  The analysis lives in :mod:`repro.lint.dataflow.unitflow`.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..engine import Finding, ProjectRule


class UnitFlowRule(ProjectRule):
    """RL009: values flowing between unit-suffixed names must agree."""

    rule_id = "RL009"
    severity = "error"
    summary = "unit-mismatch-flow"
    rationale = (
        "a _mhz value assigned into a _v parameter is a silent wrong answer "
        "the suffix convention exists to prevent; the dataflow layer checks "
        "it across calls, not just within one expression"
    )

    def check(self, project) -> Iterable[Finding]:
        from ..dataflow.unitflow import UnitAnalysis

        for path, line, col, message in UnitAnalysis(project).check_all():
            yield self.finding(path, line, col, message)
