"""RL008 — process-identity reads and unsafe captures in parallel code.

The experiment engine and the linter both fan work across
``concurrent.futures`` process pools, and the whole determinism story
(byte-identical event streams and manifests, serial vs pooled) rests on
two properties of the worker functions:

* a worker's behaviour must not depend on *which* process runs it — so
  no ``os.getpid()`` / ``os.fork()`` / ``multiprocessing.current_process()``
  anywhere in library code, where the value could leak into results or
  artifact names;
* workers dispatched to a pool must be self-contained: a module-level
  mutable global read inside a worker is a different object in every pool
  process (and in the parent), so mutations silently diverge — the
  classic "works serially, wrong under ``--jobs``" bug.

The second check resolves the callable passed to ``submit`` / ``map`` /
``apply_async`` / ``imap*`` / ``starmap*`` to a module-level function in
the same file and flags reads of module-level names bound to mutable
literals (lists, dicts, sets, and their comprehensions or constructor
calls).  Lambdas are flagged outright: they do not pickle.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule
from .determinism import attr_chain

#: Dotted reads that make behaviour depend on process identity.
_IDENTITY_CHAINS = frozenset(
    {
        ("os", "getpid"),
        ("os", "getppid"),
        ("os", "fork"),
        ("multiprocessing", "current_process"),
        ("threading", "get_ident"),
        ("threading", "get_native_id"),
    }
)

#: Executor / pool methods that dispatch a callable to workers.
_POOL_METHODS = frozenset(
    {"submit", "map", "apply_async", "imap", "imap_unordered",
     "starmap", "starmap_async"}
)

#: Constructor names whose module-level call binds a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_binding(value: ast.AST) -> bool:
    """Whether ``value`` evaluates to a mutable container at module level."""
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _module_mutable_globals(module: ast.Module) -> set[str]:
    """Names bound to mutable containers at module level."""
    names: set[str] = set()
    for statement in module.body:
        if isinstance(statement, ast.Assign) and _is_mutable_binding(
            statement.value
        ):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(statement, ast.AnnAssign)
            and statement.value is not None
            and isinstance(statement.target, ast.Name)
            and _is_mutable_binding(statement.value)
        ):
            names.add(statement.target.id)
    return names


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and assignment names that shadow globals inside ``func``."""
    bound = {arg.arg for arg in func.args.args}
    bound.update(arg.arg for arg in func.args.posonlyargs)
    bound.update(arg.arg for arg in func.args.kwonlyargs)
    if func.args.vararg:
        bound.add(func.args.vararg.arg)
    if func.args.kwarg:
        bound.add(func.args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
    return bound


def _captured_mutable_globals(
    func: ast.FunctionDef | ast.AsyncFunctionDef, mutable_globals: set[str]
) -> list[str]:
    """Mutable module globals read (unshadowed) inside ``func``."""
    if not mutable_globals:
        return []
    local = _local_bindings(func)
    captured: list[str] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mutable_globals
            and node.id not in local
            and node.id not in captured
        ):
            captured.append(node.id)
    return captured


class ProcessUnsafeParallelRule(Rule):
    """RL008: pool workers must be process-agnostic and self-contained."""

    rule_id = "RL008"
    severity = "error"
    summary = "process-unsafe-parallel"
    rationale = (
        "worker behaviour must not depend on process identity, and "
        "mutable module globals diverge silently across pool processes"
    )
    interests = (ast.Attribute, ast.Call)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None and chain in _IDENTITY_CHAINS:
                yield self.finding(
                    ctx,
                    node,
                    f"process identity read {'.'.join(chain)}; library "
                    "behaviour must not depend on which process runs it",
                )
            return

        assert isinstance(node, ast.Call)
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and node.args
        ):
            return
        worker = node.args[0]
        if isinstance(worker, ast.Lambda):
            yield self.finding(
                ctx,
                node,
                f"lambda passed to pool {node.func.attr}(); workers must be "
                "module-level functions (lambdas neither pickle nor stay "
                "free of closure capture)",
            )
            return
        if not isinstance(worker, ast.Name) or not parents:
            return
        module = parents[0]
        if not isinstance(module, ast.Module):
            return
        target = None
        for statement in module.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == worker.id
            ):
                target = statement
        if target is None:
            return
        mutable_globals = _module_mutable_globals(module)
        for name in _captured_mutable_globals(target, mutable_globals):
            yield self.finding(
                ctx,
                node,
                f"worker {worker.id}() dispatched via {node.func.attr}() "
                f"reads module-level mutable global {name!r}; each pool "
                "process gets its own copy, so state diverges silently — "
                "pass the data as an argument instead",
            )
