"""RL012 — dead-public-API rule.

A public top-level symbol nobody can reach from the CLI, the experiments
registry, or the tests is untested, unmaintained surface area — exactly
the code that rots silently until a refactor trips over it.  The
reference graph and reachability walk live in
:mod:`repro.lint.dataflow.callgraph`.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..engine import Finding, ProjectRule


class DeadPublicApiRule(ProjectRule):
    """RL012: public symbols must be reachable from an entry point."""

    rule_id = "RL012"
    severity = "warning"
    summary = "dead-public-api"
    rationale = (
        "unreachable public symbols carry no tests and no callers; they "
        "either deserve a caller, a test, an underscore, or deletion"
    )

    def check(self, project) -> Iterable[Finding]:
        from ..dataflow.callgraph import ReferenceGraph

        for path, line, col, message in ReferenceGraph(
            project
        ).dead_public_symbols():
            yield self.finding(path, line, col, message)
