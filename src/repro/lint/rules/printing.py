"""RL007 — library code must not print.

The library's output contract is structured: experiments return
:class:`~repro.experiments.common.ExperimentResult`, the simulators emit
typed events through the installed sink, and metrics accumulate in the
registry.  A stray ``print()`` in a library module bypasses all of that —
it cannot be captured by the observability pipeline, corrupts piped CLI
output, and hides state the manifests are supposed to record.  Operator
output belongs in the CLI layer (``cli.py`` / ``__main__.py``), which is
exactly where rendering decisions are made.

Grandfathered call sites (none today) are listed in
:data:`GRANDFATHERED_PATH_SUFFIXES`; new entries need a justification
comment and should be burned down, not added to.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule

#: Module filenames where printing is the job: the CLI entry points.
ALLOWED_FILENAMES = frozenset({"cli.py", "__main__.py"})

#: Baseline of pre-rule ``print()`` sites, as posix path suffixes.  Empty:
#: the tree was clean when RL007 landed.  Additions grandfather an existing
#: site only — new code must route output through the CLI or a sink.
GRANDFATHERED_PATH_SUFFIXES: frozenset[str] = frozenset()


class DirectPrintRule(Rule):
    """RL007: no direct ``print()`` outside the CLI layer."""

    rule_id = "RL007"
    severity = "error"
    summary = "print-in-library"
    rationale = (
        "library modules report through results, events, and metrics; "
        "print() bypasses the sinks and corrupts piped CLI output"
    )
    interests = (ast.Call,)

    def applies(self, ctx: LintContext) -> bool:
        if not ctx.in_repro_src or ctx.is_test:
            return False
        if ctx.filename in ALLOWED_FILENAMES:
            return False
        return not any(
            ctx.path.endswith(suffix) for suffix in GRANDFATHERED_PATH_SUFFIXES
        )

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.finding(
                ctx,
                node,
                "direct print() in library code; return structured results "
                "or emit through an obs sink (printing belongs in cli.py)",
            )
