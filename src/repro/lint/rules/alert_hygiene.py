"""RL013 — alert-rule hygiene.

Alert and SLO rules (:mod:`repro.obs.alerts.rules`) are predicates over
metric names, so the determinism and unit contracts have to hold at the
*definition* site: a rule keyed on ``fleet.tuned_freq`` hides its unit
exactly the way an unsuffixed float parameter does (RL004), and a rule
keyed on a wall-clock-sourced metric (``bench.wall_s``) alerts on
machine load instead of simulated behaviour (RL002).  This rule lints
literal ``AlertRule(...)`` / ``SloTarget(...)`` constructions and
rule-shaped dict literals; :func:`metric_name_problems` is the shared
predicate the runtime loader applies to everything the linter cannot see
(JSON rule packs, computed names).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from ..engine import Finding, LintContext, Rule
from .units_suffix import expected_suffixes

#: Name components marking a wall-clock-sourced quantity.  Profiling is
#: the only sanctioned wall-clock reader (the RL002 exemption), and its
#: output is explicitly outside the alerting contract.
WALL_CLOCK_COMPONENTS = frozenset(
    {"wall", "walltime", "wallclock", "hosttime", "realtime", "timestamp"}
)

#: Constructor names whose ``metric`` argument this rule inspects, with
#: the positional index the metric lands on.
_RULE_CONSTRUCTORS = {"AlertRule": 2, "SloTarget": 1}


def metric_name_problems(metric: str) -> tuple[str, ...]:
    """Hygiene problems with a metric name used in an alert predicate.

    Empty tuple means clean.  Shared between this lint rule (literal
    definitions in source) and the alerts runtime (rule packs loaded
    from JSON), so both report identical diagnostics.
    """
    if not isinstance(metric, str) or not metric:
        return ("metric name must be a non-empty string",)
    components = [
        word for part in metric.lower().split(".") for word in part.split("_")
    ]
    problems = []
    wall_words = sorted(set(components) & WALL_CLOCK_COMPONENTS)
    if wall_words:
        problems.append(
            f"keys on wall-clock source component(s) "
            f"{', '.join(wall_words)}; alert predicates must reference "
            "simulated quantities only"
        )
    needed = expected_suffixes("_".join(components))
    if needed:
        word, suffixes = needed
        expected = ", ".join(f"_{suffix}" for suffix in sorted(suffixes))
        problems.append(
            f"names a {word} quantity but lacks a unit suffix "
            f"(expected one of: {expected})"
        )
    return tuple(problems)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class AlertRuleHygieneRule(Rule):
    """RL013: alert/SLO definitions use unit-clean, clock-free metrics."""

    rule_id = "RL013"
    severity = "error"
    summary = "alert-rule-hygiene"
    rationale = (
        "an alert keyed on an unsuffixed or wall-clock metric fires on "
        "ambiguous units or machine load, not on simulated behaviour"
    )
    interests = (ast.Call, ast.Dict)

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro_src and not ctx.is_test

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            yield from self._visit_call(node, ctx)
        elif isinstance(node, ast.Dict):
            yield from self._visit_dict(node, ctx)

    def _visit_call(
        self, node: ast.Call, ctx: LintContext
    ) -> Iterable[Finding]:
        name = _call_name(node)
        if name not in _RULE_CONSTRUCTORS:
            return
        metric_node: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "metric":
                metric_node = keyword.value
        if metric_node is None:
            index = _RULE_CONSTRUCTORS[name]
            if len(node.args) > index:
                metric_node = node.args[index]
        yield from self._check_metric(name, metric_node, ctx)

    def _visit_dict(
        self, node: ast.Dict, ctx: LintContext
    ) -> Iterable[Finding]:
        keys = {
            key.value: value
            for key, value in zip(node.keys, node.values)
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        # A rule-shaped literal carries a metric plus a rule discriminator
        # (alert `kind` or SLO `objective`); plain data dicts do not.
        if "metric" not in keys:
            return
        if "kind" not in keys and "objective" not in keys:
            return
        yield from self._check_metric("rule dict", keys["metric"], ctx)

    def _check_metric(
        self, owner: str, metric_node: ast.expr | None, ctx: LintContext
    ) -> Iterable[Finding]:
        if not isinstance(metric_node, ast.Constant) or not isinstance(
            metric_node.value, str
        ):
            return
        for problem in metric_name_problems(metric_node.value):
            yield self.finding(
                ctx,
                metric_node,
                f"{owner} metric {metric_node.value!r} {problem}",
            )
