"""Project-wide dataflow analysis for ``repro.lint`` (the ``--project`` mode).

The per-file rules (RL001-RL008) see one AST at a time; this package sees
the whole package at once:

:mod:`~repro.lint.dataflow.symbols`
    Per-module extraction: functions, classes and their fields, import
    bindings, ``__all__`` — one picklable :class:`ModuleInfo` per file.
:mod:`~repro.lint.dataflow.project`
    The :class:`ProjectModel`: module index, import/name resolution, and
    the shared entry point :func:`analyze_project`.
:mod:`~repro.lint.dataflow.dimensions`
    The unit-dimension lattice inferred from the suffix convention
    (``_mhz``, ``_v``, ``_w``, ``_ps``, ...).
:mod:`~repro.lint.dataflow.unitflow`
    Interprocedural unit propagation (assignments, arithmetic, returns,
    call arguments) powering RL009.
:mod:`~repro.lint.dataflow.taint`
    Seed-provenance taint analysis powering RL010.
:mod:`~repro.lint.dataflow.callgraph`
    Symbol reference graph and reachability powering RL012.
:mod:`~repro.lint.dataflow.cache`
    sha256-keyed on-disk cache of parsed/extracted modules, so repeated
    ``--project`` runs on an unchanged tree skip re-parsing.
"""

from __future__ import annotations

from .project import ProjectModel, analyze_project

__all__ = ["ProjectModel", "analyze_project"]
