"""The unit-dimension lattice behind RL009.

Units are inferred from the repository's suffix convention: a name whose
last underscore component is a known unit word (``freq_mhz``, ``slack_ps``,
``vdd_v``) carries that unit; names ending in a dimensionless tail
(``_ratio``, ``_factor``, ``_pct``) are explicitly dimensionless; everything
else is *unknown*, which never participates in a mismatch.  ``unknown`` is
the analysis top: inference is deliberately under-approximate so that every
reported mismatch is backed by two names that both state their unit.

Compound rates (``ceff_w_per_ghz``, ``temp_coefficient_per_c``) are not
modeled — any name containing a ``per`` component is unknown.  Single-
component names (a bare ``s`` or ``c``) are also unknown: the suffix is only
trusted when there is a stem in front of it.
"""

from __future__ import annotations

import ast

#: Sentinel unit for explicitly dimensionless values (ratios, counts, ...).
DIMENSIONLESS = "dimensionless"

#: Unit word -> physical dimension.  ``_k`` (kelvin) is deliberately absent:
#: the library is Celsius-only and ``_k`` names fence multipliers
#: (``fence_k``); ``_kg``/``_m`` are absent for the same collision reasons.
UNIT_DIMENSION: dict[str, str] = {
    "hz": "frequency",
    "khz": "frequency",
    "mhz": "frequency",
    "ghz": "frequency",
    "ps": "time",
    "ns": "time",
    "us": "time",
    "ms": "time",
    "s": "time",
    "v": "voltage",
    "mv": "voltage",
    "w": "power",
    "mw": "power",
    "kw": "power",
    "c": "temperature",
    "j": "energy",
    "mj": "energy",
    "a": "current",
    "ma": "current",
}

#: Name tails that mark a value as explicitly dimensionless.  Mirrors the
#: RL004 tails (plus percentage spellings): a ratio of two quantities has
#: no unit, and multiplying a quantity by one preserves its unit.
DIMENSIONLESS_TAILS = frozenset(
    {
        "count",
        "exponent",
        "factor",
        "fraction",
        "gain",
        "index",
        "norm",
        "pct",
        "percent",
        "ratio",
        "scale",
        "slope",
        "speedup",
    }
)

#: Exact (lowered) names that carry a unit without a suffix.  ``vdd`` is the
#: supply rail and is always volts (see the RL004 parameter allowlist).
#: ``mv`` is the millivolt-conversion parameter (`repro.units.millivolts`).
NAMED_UNITS: dict[str, str] = {"vdd": "v", "nominal_vdd": "v", "mv": "mv"}


def unit_of_name(name: str) -> str | None:
    """Infer the unit a name declares, or ``None`` when it declares nothing.

    >>> unit_of_name("freq_mhz")
    'mhz'
    >>> unit_of_name("STATIC_MARGIN_MHZ")
    'mhz'
    >>> unit_of_name("speedup_ratio")
    'dimensionless'
    >>> unit_of_name("ceff_w_per_ghz") is None  # compound rate: unmodeled
    True
    >>> unit_of_name("s") is None  # bare suffix with no stem
    True
    >>> unit_of_name("power_budget_w_for_mhz")  # `for` names the argument
    'w'
    """
    lowered = name.lower()
    if lowered in NAMED_UNITS:
        return NAMED_UNITS[lowered]
    components = [part for part in lowered.split("_") if part]
    if "for" in components:
        # `x_w_for_mhz` is a w-valued quantity keyed by a mhz argument;
        # only the part before `for` names the value itself.
        components = components[: components.index("for")]
    if len(components) < 2 or "per" in components:
        return None
    tail = components[-1]
    if tail in DIMENSIONLESS_TAILS:
        return DIMENSIONLESS
    if tail in UNIT_DIMENSION:
        return tail
    return None


def dimension_of(unit: str) -> str:
    """Human-readable dimension word for a unit (used in messages)."""
    if unit == DIMENSIONLESS:
        return "dimensionless"
    return UNIT_DIMENSION.get(unit, "unknown")


def describe(unit: str) -> str:
    """Render a unit for a finding message, e.g. ``_mhz (frequency)``."""
    if unit == DIMENSIONLESS:
        return "a dimensionless value"
    return f"_{unit} ({dimension_of(unit)})"


def is_quantity(unit: str | None) -> bool:
    """True for a concrete physical unit (not unknown, not dimensionless)."""
    return unit is not None and unit != DIMENSIONLESS


def mismatch(left: str | None, right: str | None) -> bool:
    """True when two inferred units are provably incompatible.

    Only two *concrete* units of different spelling mismatch; ``None``
    (unknown) and :data:`DIMENSIONLESS` are compatible with everything at
    the comparison/addition level — dimensionless offsets are suspicious
    but too common in clamp/guard idioms to flag.
    """
    return is_quantity(left) and is_quantity(right) and left != right


def combine_add(left: str | None, right: str | None) -> str | None:
    """Resulting unit of ``left + right`` (also sub/min/max/mod merges)."""
    if is_quantity(left):
        return left
    if is_quantity(right):
        return right
    if left == DIMENSIONLESS and right == DIMENSIONLESS:
        return DIMENSIONLESS
    return None


def combine_mul(left: str | None, right: str | None) -> str | None:
    """Resulting unit of ``left * right``; compound products are unknown."""
    if left == DIMENSIONLESS:
        return right
    if right == DIMENSIONLESS:
        return left
    # quantity * quantity (e.g. W * s) would be a compound unit; quantity *
    # unknown could be anything — both collapse to unknown.
    return None


def combine_div(left: str | None, right: str | None) -> str | None:
    """Resulting unit of ``left / right``."""
    if is_quantity(left) and left == right:
        return DIMENSIONLESS
    if right == DIMENSIONLESS:
        return left
    if left == DIMENSIONLESS and right == DIMENSIONLESS:
        return DIMENSIONLESS
    return None


def combine_binop(op: ast.operator, left: str | None, right: str | None) -> str | None:
    """Resulting unit of a binary arithmetic operation."""
    if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
        return combine_add(left, right)
    if isinstance(op, ast.Mult):
        return combine_mul(left, right)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        return combine_div(left, right)
    if isinstance(op, ast.Pow):
        return DIMENSIONLESS if left == DIMENSIONLESS else None
    return None


def checks_in_binop(op: ast.operator) -> bool:
    """Whether operands of ``op`` must agree in unit (add-like operators)."""
    return isinstance(op, (ast.Add, ast.Sub, ast.Mod))
