"""Symbol reference graph and reachability (the RL012 engine).

Nodes are top-level functions and classes (methods fold into their
class).  Edges are static references: any ``Name`` or dotted
``Attribute`` inside a node's body that resolves to another project
symbol.  Roots are everything that can execute without being referenced
first:

* module top-level code (imports run it), including ``__all__`` exports
  and the experiments ``REGISTRY`` literal;
* every node in an *entry* module — ``cli``, ``__main__``, ``conftest``,
  and the test tree (root-only paths);
* doctest examples (``>>> call(...)`` lines in docstrings), because the
  doctest runner executes them as tests.

A public top-level symbol of a checked ``src/repro`` module that the BFS
never reaches is dead public API.  The walk is conservative by design —
a shadowed local that happens to share a function's name counts as a
use — so every report is a symbol with *no* plausible static caller.
"""

from __future__ import annotations

import ast
import re

from .project import ProjectModel, Resolution
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, dotted_name

#: Module name tails that make every contained symbol a root.
_ENTRY_TAILS = frozenset({"cli", "__main__", "conftest", "setup"})

_DOCTEST_CALL_RE = re.compile(r"^\s*(?:>>>|\.\.\.)\s.*?\b([A-Za-z_][A-Za-z0-9_]*)\s*\(", re.M)

#: An anchored message (rule id added by RL012).
RawFinding = tuple[str, int, int, str]


def _node_id(resolution: Resolution) -> str | None:
    """Graph node for a resolved symbol (methods fold into their class)."""
    if resolution.kind == "function":
        function: FunctionInfo = resolution.value
        module_name, _, local = function.qualname.partition(":")
        if "." in local:  # a method: attribute the use to the class
            return f"{module_name}:{local.partition('.')[0]}"
        return function.qualname
    if resolution.kind == "class":
        info: ClassInfo = resolution.value
        return info.qualname
    return None


class ReferenceGraph:
    """Project-wide reachability over top-level symbols."""

    def __init__(self, project: ProjectModel):
        self.project = project
        #: node id -> (module, lineno, col, kind, name, is_public)
        self.nodes: dict[str, tuple[ModuleInfo, int, int, str, str, bool]] = {}
        self.edges: dict[str, set[str]] = {}
        self.roots: set[str] = set()
        self._build()
        self.reachable = self._walk()

    # -- graph construction ------------------------------------------------

    def _build(self) -> None:
        for module in self.project.all_modules:
            is_entry = (
                module.is_test
                or module in self.project.root_only
                or module.name.rpartition(".")[2] in _ENTRY_TAILS
            )
            for function in module.functions.values():
                node = function.qualname
                self.nodes[node] = (
                    module,
                    function.lineno,
                    function.col,
                    "function",
                    function.name,
                    function.is_public,
                )
                self.edges[node] = self._references(
                    module, function.node, class_ctx=None
                )
                if is_entry:
                    self.roots.add(node)
            for cls in module.classes.values():
                node = cls.qualname
                self.nodes[node] = (
                    module,
                    cls.lineno,
                    cls.col,
                    "class",
                    cls.name,
                    cls.is_public,
                )
                assert cls.node is not None
                self.edges[node] = self._references(
                    module, cls.node, class_ctx=cls
                )
                if is_entry:
                    self.roots.add(node)
            self.roots.update(self._module_level_roots(module))

    def _module_level_roots(self, module: ModuleInfo) -> set[str]:
        """Targets referenced by code that runs at import time."""
        roots: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            roots.update(self._references(module, stmt, class_ctx=None))
        for export in module.exports:
            resolution = self.project.resolve_dotted(module, export)
            if resolution is not None:
                node = _node_id(resolution)
                if node is not None:
                    roots.add(node)
        roots.update(self._doctest_roots(module))
        return roots

    def _doctest_roots(self, module: ModuleInfo) -> set[str]:
        """Names called from ``>>>`` examples — the doctest runner is a test."""
        roots: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
                continue
            if ">>>" not in node.value:
                continue
            for name in _DOCTEST_CALL_RE.findall(node.value):
                resolution = self.project.resolve_dotted(module, name)
                if resolution is not None:
                    target = _node_id(resolution)
                    if target is not None:
                        roots.add(target)
        return roots

    def _references(
        self, module: ModuleInfo, root: ast.AST, *, class_ctx: ClassInfo | None
    ) -> set[str]:
        """Project symbols statically referenced anywhere under ``root``."""
        spellings: set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.Name):
                spellings.add(node.id)
            elif isinstance(node, ast.Attribute):
                spelled = dotted_name(node)
                if spelled is not None:
                    spellings.add(spelled)
        targets: set[str] = set()
        for spelled in spellings:
            resolution = self.project.resolve_dotted(
                module, spelled, class_ctx=class_ctx
            )
            if resolution is not None:
                target = _node_id(resolution)
                if target is not None:
                    targets.add(target)
        return targets

    # -- reachability ------------------------------------------------------

    def _walk(self) -> set[str]:
        reachable: set[str] = set()
        frontier = [node for node in self.roots if node in self.nodes]
        reachable.update(node for node in self.roots if node in self.nodes)
        while frontier:
            current = frontier.pop()
            for target in self.edges.get(current, ()):
                if target in self.nodes and target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return reachable

    def dead_public_symbols(self) -> list[RawFinding]:
        """Public symbols in checked (non-test) modules the walk never reached."""
        findings: list[RawFinding] = []
        checked = {id(module) for module in self.project.modules}
        for node, (module, lineno, col, kind, name, is_public) in self.nodes.items():
            if node in self.reachable or not is_public:
                continue
            if module.is_test or id(module) not in checked:
                continue
            findings.append(
                (
                    module.path,
                    lineno,
                    col,
                    f"public {kind} `{name}` is unreachable from the CLI, "
                    "the experiments registry, and the tests; delete it or "
                    "suppress with a justification",
                )
            )
        return sorted(set(findings))
