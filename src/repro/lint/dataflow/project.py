"""The :class:`ProjectModel`: whole-package symbol table and resolution.

Built once per ``--project`` run from every ``.py`` file reachable from
the given paths (plus optional *root-only* paths such as ``tests/``,
which contribute reachability roots and call sites but are never
themselves checked).  Modules are extracted through the sha256-keyed
:class:`~repro.lint.dataflow.cache.ModuleCache`, so warm runs skip
parsing entirely.

Resolution is deliberately conservative: a dotted reference either
resolves to a unique project symbol (function, class, module-level
constant) or is classified *external*/*unknown*; the analyses built on
top (unit flow, taint) only act on resolved symbols, so imprecision
shows up as silence, not as false findings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path, PurePosixPath

from ...errors import LintError
from ..engine import Finding, ProjectRule, discover_files
from .cache import ModuleCache, source_sha256
from .symbols import (
    Binding,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Param,
    dotted_name,
    extract_module,
)


class Resolution:
    """Outcome of resolving a dotted reference.

    ``kind`` is one of ``"function"``, ``"class"``, ``"module"``,
    ``"const"``, or ``"external"``; ``value`` is the matching info object
    (or the dotted spelling for externals); ``module`` is the defining
    :class:`ModuleInfo` for project symbols.
    """

    __slots__ = ("kind", "value", "module")

    def __init__(self, kind: str, value, module: ModuleInfo | None = None):
        self.kind = kind
        self.value = value
        self.module = module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resolution({self.kind!r}, {self.value!r})"


class ProjectModel:
    """Symbol table, import graph, and resolution for one analysis run."""

    def __init__(
        self,
        paths: Sequence[str | Path],
        *,
        root_only_paths: Sequence[str | Path] = (),
        cache: ModuleCache | None = None,
    ):
        self.cache = cache if cache is not None else ModuleCache(None)
        #: Modules under the analyzed paths — rules report findings here.
        self.modules: list[ModuleInfo] = []
        #: Modules contributing roots/uses only (tests, conftest).
        self.root_only: list[ModuleInfo] = []
        self._by_name: dict[str, ModuleInfo] = {}
        self._name_collisions: set[str] = set()
        self.parse_failures: list[Finding] = []
        for file_path in discover_files(paths):
            info = self._load(file_path)
            if info is not None:
                self.modules.append(info)
        for file_path in discover_files(root_only_paths):
            info = self._load(file_path)
            if info is not None:
                self.root_only.append(info)

    # -- construction ------------------------------------------------------

    def _load(self, file_path: Path) -> ModuleInfo | None:
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        sha = source_sha256(source)
        display = str(PurePosixPath(file_path.as_posix()))
        info = self.cache.get(sha, display)
        if info is None:
            try:
                info = extract_module(file_path, source, sha, display_path=display)
            except SyntaxError as exc:
                self.parse_failures.append(
                    Finding(
                        path=display,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule_id="PARSE",
                        severity="error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                return None
            self.cache.put(info)
        if info.name in self._by_name and self._by_name[info.name] is not info:
            self._name_collisions.add(info.name)
        else:
            self._by_name[info.name] = info
        return info

    # -- lookup ------------------------------------------------------------

    @property
    def all_modules(self) -> list[ModuleInfo]:
        """Checked + root-only modules, in load order."""
        return [*self.modules, *self.root_only]

    def module_named(self, name: str) -> ModuleInfo | None:
        """Module by exact dotted name (``None`` on miss or collision)."""
        if name in self._name_collisions:
            return None
        return self._by_name.get(name)

    def _symbol_in(self, module: ModuleInfo, name: str, _depth: int = 0) -> Resolution | None:
        """Resolve ``name`` inside ``module`` (defs, constants, re-exports)."""
        if name in module.functions:
            return Resolution("function", module.functions[name], module)
        if name in module.classes:
            return Resolution("class", module.classes[name], module)
        if name in module.bindings and _depth < 8:
            return self._follow(module.bindings[name], _depth + 1)
        if name in module.constants:
            return Resolution("const", name, module)
        # `from . import sibling` in the package __init__ exposes the
        # submodule as an attribute even without an explicit binding.
        submodule = self.module_named(f"{module.name}.{name}")
        if submodule is not None:
            return Resolution("module", submodule, submodule)
        return None

    def _follow(self, binding: Binding, _depth: int = 0) -> Resolution | None:
        if binding.kind == "module":
            module = self.module_named(binding.target)
            if module is not None:
                return Resolution("module", module, module)
            return Resolution("external", binding.target)
        module_name, _, symbol = binding.target.partition(":")
        module = self.module_named(module_name)
        if module is None:
            return Resolution("external", f"{module_name}.{symbol}")
        resolved = self._symbol_in(module, symbol, _depth)
        if resolved is None:
            # The name may itself be a submodule (`from repro import core`).
            submodule = self.module_named(f"{module_name}.{symbol}")
            if submodule is not None:
                return Resolution("module", submodule, submodule)
        return resolved

    def resolve_dotted(
        self,
        module: ModuleInfo,
        dotted: str,
        *,
        class_ctx: ClassInfo | None = None,
    ) -> Resolution | None:
        """Resolve a dotted source spelling as seen from ``module``.

        Handles local defs, import bindings, ``self``/``cls`` method
        references, and attribute paths through project modules.  Returns
        ``None`` when the head name is not statically known.
        """
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and class_ctx is not None:
            if not rest:
                return Resolution("class", class_ctx)
            method = rest.partition(".")[0]
            if method in class_ctx.methods:
                return Resolution("function", class_ctx.methods[method], module)
            return None
        current = self._symbol_in(module, head)
        if current is None:
            return None
        while rest:
            part, _, rest = rest.partition(".")
            if current.kind == "module":
                current = self._symbol_in(current.value, part)
                if current is None:
                    return None
            elif current.kind == "external":
                current = Resolution("external", f"{current.value}.{part}")
            elif current.kind == "class":
                info: ClassInfo = current.value
                if part in info.methods:
                    current = Resolution(
                        "function", info.methods[part], current.module
                    )
                else:
                    return None
            else:
                return None
        return current

    def resolve_call_target(
        self, module: ModuleInfo, func, *, class_ctx: ClassInfo | None = None
    ) -> Resolution | None:
        """Resolve a call's ``func`` expression to its target, if static."""
        spelled = dotted_name(func)
        if spelled is None:
            return None
        return self.resolve_dotted(module, spelled, class_ctx=class_ctx)

    # -- class structure ---------------------------------------------------

    def base_classes(self, info: ClassInfo) -> list[ClassInfo]:
        """Project-resolved base classes of ``info`` (direct bases only)."""
        bases: list[ClassInfo] = []
        owner = self.module_of_class(info)
        if owner is None:
            return bases
        for base in info.bases:
            resolved = self.resolve_dotted(owner, base)
            if resolved is not None and resolved.kind == "class":
                bases.append(resolved.value)
        return bases

    def module_of_class(self, info: ClassInfo) -> ModuleInfo | None:
        return self.module_named(info.qualname.partition(":")[0])

    def mro(self, info: ClassInfo) -> list[ClassInfo]:
        """Linearized ancestry (single-inheritance walk, cycle-guarded)."""
        chain: list[ClassInfo] = []
        seen = {info.qualname}
        frontier = [info]
        while frontier:
            current = frontier.pop(0)
            chain.append(current)
            for base in self.base_classes(current):
                if base.qualname not in seen:
                    seen.add(base.qualname)
                    frontier.append(base)
        return chain

    def inherits_from(self, info: ClassInfo, base_name: str) -> bool:
        """True when ``info`` (transitively) subclasses a ``base_name`` class."""
        return any(
            ancestor.name == base_name for ancestor in self.mro(info)[1:]
        )

    def constructor_params(self, info: ClassInfo) -> list[Param] | None:
        """Parameters accepted by ``ClassName(...)``.

        Dataclasses synthesize ``__init__`` from fields in MRO order (base
        fields first); explicit ``__init__`` wins otherwise.  ``None``
        means the constructor shape is not statically known.
        """
        init = info.methods.get("__init__")
        if init is not None:
            return init.params[1:]  # drop self
        if not info.is_dataclass:
            return None
        ordered: list[Param] = []
        seen: set[str] = set()
        for ancestor in reversed(self.mro(info)):
            if not ancestor.is_dataclass:
                continue
            for field in ancestor.fields:
                if field.name not in seen:
                    seen.add(field.name)
                    ordered.append(field)
        return ordered


def analyze_project(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[ProjectRule] | None = None,
    root_only_paths: Sequence[str | Path] = (),
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Run project rules over ``paths`` and return sorted findings.

    Suppression comments (``# repro-lint: disable=RL0xx``) are honored at
    the finding's anchor line, exactly as in per-file mode; parse failures
    surface as ``PARSE`` findings rather than aborting the run.
    """
    if rules is None:
        from ..rules import PROJECT_RULES

        rules = PROJECT_RULES
    project = ProjectModel(
        paths,
        root_only_paths=root_only_paths,
        cache=ModuleCache(cache_dir),
    )
    by_path = {module.path: module for module in project.all_modules}
    findings: list[Finding] = list(project.parse_failures)
    for rule in rules:
        for finding in rule.check(project):
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule_id, finding.line
            ):
                continue
            findings.append(finding)
    return sorted(set(findings))


def iter_checked_functions(
    project: ProjectModel,
) -> Iterable[tuple[ModuleInfo, ClassInfo | None, FunctionInfo]]:
    """Every function/method in the checked (non-root-only) modules."""
    for module in project.modules:
        for function in module.functions.values():
            yield module, None, function
        for cls in module.classes.values():
            for method in cls.methods.values():
                yield module, cls, method


def iter_all_functions(
    project: ProjectModel,
) -> Iterable[tuple[ModuleInfo, ClassInfo | None, FunctionInfo]]:
    """Every function/method across checked and root-only modules."""
    for module in project.all_modules:
        for function in module.functions.values():
            yield module, None, function
        for cls in module.classes.values():
            for method in cls.methods.values():
                yield module, cls, method
