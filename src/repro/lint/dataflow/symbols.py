"""Per-module symbol extraction for the project analyzer.

One :class:`ModuleInfo` per source file, carrying everything the project
rules need: the parsed tree, top-level functions and classes (with
dataclass fields and methods), import bindings, ``__all__`` exports, and
the suppression map.  The object graph is picklable, so
:mod:`repro.lint.dataflow.cache` can persist it keyed by the file's
sha256.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from ..engine import parse_suppressions

#: Package sub-directories whose code an unseeded RNG must never reach
#: (the RL010 sink zones) — the deterministic physics and its harness.
PROTECTED_ZONES = frozenset({"atm", "core", "experiments", "fastpath"})


@dataclass(frozen=True)
class Param:
    """One parameter of a function or dataclass constructor."""

    name: str
    has_default: bool
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """A function or method definition."""

    name: str
    qualname: str  # "module:Class.method" or "module:function"
    lineno: int
    col: int
    params: list[Param]
    is_public: bool
    decorators: tuple[str, ...]
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def is_method(self) -> bool:
        return "." in self.qualname.partition(":")[2]


@dataclass
class ClassInfo:
    """A class definition with its dataclass fields and methods."""

    name: str
    qualname: str
    lineno: int
    col: int
    bases: tuple[str, ...]  # dotted source spellings of base expressions
    fields: list[Param]  # AnnAssign fields, in declaration order
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    is_dataclass: bool = False
    is_public: bool = True
    node: ast.ClassDef | None = None


@dataclass(frozen=True)
class Binding:
    """What a module-level name is bound to by an import.

    ``kind`` is ``"module"`` (``import repro.units as units``) or
    ``"symbol"`` (``from repro.units import clamp``); ``target`` is the
    dotted module name, with the symbol name appended after ``":"`` for
    symbol bindings.  Unresolvable (external) imports keep their dotted
    spelling so callers can still classify ``numpy.random.default_rng``.
    """

    kind: str
    target: str


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one source file."""

    path: str  # display path (posix)
    name: str  # dotted module name, e.g. "repro.core.manager"
    sha256: str
    tree: ast.Module
    in_repro_src: bool
    is_test: bool
    suppressions: dict[int, frozenset[str]]
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    bindings: dict[str, Binding] = field(default_factory=dict)
    exports: tuple[str, ...] = ()  # __all__ strings
    constants: tuple[str, ...] = ()  # module-level assigned names

    @property
    def zone(self) -> str | None:
        """The protected zone this module lives in, if any."""
        for part in PurePosixPath(self.path).parts:
            if part in PROTECTED_ZONES:
                return part
        return None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` carries a disable comment covering ``rule_id``."""
        disabled = self.suppressions.get(line)
        if not disabled:
            return False
        return "all" in disabled or rule_id in disabled


def dotted_name(node: ast.expr) -> str | None:
    """Source spelling of a ``Name``/``Attribute`` chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """Dotted module name derived from package markers on disk.

    Walks up from the file while ``__init__.py`` markers are present, so
    ``src/repro/core/manager.py`` names ``repro.core.manager`` no matter
    which root the analyzer was pointed at.  Files outside any package
    (fixture corpora) get their bare stem.
    """
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _extract_params(args: ast.arguments) -> list[Param]:
    params: list[Param] = []
    positional = [*args.posonlyargs, *args.args]
    first_default = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        params.append(
            Param(arg.arg, index >= first_default, arg.lineno, arg.col_offset)
        )
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(
            Param(arg.arg, default is not None, arg.lineno, arg.col_offset)
        )
    return params


def _extract_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> FunctionInfo:
    decorators = tuple(
        name for name in (dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
                          for dec in node.decorator_list)
        if name is not None
    )
    return FunctionInfo(
        name=node.name,
        qualname=qualname,
        lineno=node.lineno,
        col=node.col_offset,
        params=_extract_params(node.args),
        is_public=not node.name.startswith("_"),
        decorators=decorators,
        node=node,
    )


def _extract_class(node: ast.ClassDef, module_name: str) -> ClassInfo:
    qualname = f"{module_name}:{node.name}"
    bases = tuple(
        name for name in (dotted_name(base) for base in node.bases) if name
    )
    decorators = {
        name
        for name in (
            dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
            for dec in node.decorator_list
        )
        if name
    }
    is_dataclass = any(
        name == "dataclass" or name.endswith(".dataclass") for name in decorators
    )
    info = ClassInfo(
        name=node.name,
        qualname=qualname,
        lineno=node.lineno,
        col=node.col_offset,
        bases=bases,
        fields=[],
        is_dataclass=is_dataclass,
        is_public=not node.name.startswith("_"),
        node=node,
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not isinstance(stmt.annotation, ast.Constant) or stmt.value is None:
                info.fields.append(
                    Param(
                        stmt.target.id,
                        stmt.value is not None,
                        stmt.lineno,
                        stmt.col_offset,
                    )
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _extract_function(
                stmt, f"{qualname}.{stmt.name}"
            )
    return info


def _extract_bindings(
    module: ast.Module, module_name: str, *, is_package: bool
) -> dict[str, Binding]:
    bindings: dict[str, Binding] = {}
    # Relative imports resolve against the *package*: the module name
    # itself for an __init__.py, its parent otherwise.
    package_parts = module_name.split(".")
    if not is_package:
        package_parts = package_parts[:-1]
    for stmt in ast.walk(module):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.partition(".")[0]
                # `import a.b.c` binds `a`; `import a.b.c as x` binds the
                # full dotted target to `x`.
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                bindings[bound] = Binding("module", target)
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                # `level=1` is the package itself, each extra dot one more
                # parent up.
                base_parts = package_parts[
                    : len(package_parts) - (stmt.level - 1)
                ]
                base = ".".join(base_parts)
                if stmt.module:
                    base = f"{base}.{stmt.module}" if base else stmt.module
            else:
                base = stmt.module or ""
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                if base:
                    bindings[bound] = Binding("symbol", f"{base}:{alias.name}")
                else:
                    bindings[bound] = Binding("module", alias.name)
    return bindings


def extract_module(
    path: str | Path,
    source: str,
    sha256: str,
    *,
    display_path: str | None = None,
) -> ModuleInfo:
    """Parse + extract one module; raises ``SyntaxError`` on broken files."""
    file_path = Path(path)
    display = display_path or str(PurePosixPath(file_path.as_posix()))
    parts = PurePosixPath(display).parts
    name = module_name_for(file_path)
    tree = ast.parse(source, filename=display)
    info = ModuleInfo(
        path=display,
        name=name,
        sha256=sha256,
        tree=tree,
        in_repro_src=any(
            parts[i] == "src" and parts[i + 1] == "repro"
            for i in range(len(parts) - 1)
        ),
        is_test="tests" in parts or parts[-1].startswith("test_"),
        suppressions=parse_suppressions(source),
    )
    exports: list[str] = []
    constants: list[str] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = _extract_function(
                stmt, f"{name}:{stmt.name}"
            )
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _extract_class(stmt, name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    constants.append(target.id)
                    if target.id == "__all__" and isinstance(
                        stmt.value, (ast.List, ast.Tuple)
                    ):
                        exports.extend(
                            element.value
                            for element in stmt.value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        )
    info.bindings = _extract_bindings(
        tree, name, is_package=file_path.stem == "__init__"
    )
    info.exports = tuple(exports)
    info.constants = tuple(constants)
    return info
