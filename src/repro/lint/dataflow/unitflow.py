"""Interprocedural unit-dimension propagation (the RL009 engine).

Every function gets a *summary* (its return unit); summaries start from
the name contract (``def idle_frequency_mhz`` returns MHz) and unknown
returns are filled by inferring return expressions against the current
summary table until a fixed point (bounded).  A final pass re-walks every
checked module with the converged summaries and emits a mismatch wherever
two values that both *state* their unit disagree:

* ``a_mhz + b_v`` / ``a_ps < b_s`` — arithmetic/comparison across units;
* ``voltage_v = freq_mhz`` — assignment into a unit-suffixed name;
* ``set_rail(vdd_v=freq_mhz)`` — call argument into a unit-suffixed
  parameter (converter misuse is this case: ``mhz_to_cycle_ps(cycle_ps)``);
* ``return cycle_ps`` from ``def frequency_mhz(...)`` — return contract.

Unknown never participates in a mismatch, so precision losses (dynamic
calls, compound rates, untyped literals) silence the analysis instead of
polluting it.
"""

from __future__ import annotations

import ast

from .dimensions import (
    checks_in_binop,
    combine_add,
    combine_binop,
    describe,
    is_quantity,
    mismatch,
    unit_of_name,
)
from .project import ProjectModel, iter_all_functions, iter_checked_functions
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, Param

#: qualname -> return unit, for functions whose unit is not in their name.
SIGNATURE_RETURNS: dict[str, str] = {
    "repro.units:millivolts": "v",
}

#: Callables (by bare/attribute tail name) that return the merged unit of
#: their arguments and require the quantity-typed arguments to agree.
_MERGING_PASSTHROUGH = frozenset(
    {"min", "max", "clamp", "maximum", "minimum", "fmin", "fmax", "where"}
)

#: Callables that return the unit of their (first typed) argument.
_VALUE_PASSTHROUGH = frozenset(
    {
        "abs",
        "absolute",
        "array",
        "asarray",
        "float",
        "mean",
        "median",
        "round",
        "sorted",
        "sum",
        "require_positive",
        "require_in_range",
    }
)

#: An anchored message produced by the analysis (rule id added by RL009).
RawFinding = tuple[str, int, int, str]

#: Fixed-point iteration bound for return-summary inference; unit chains
#: through helpers are shallow, so convergence is fast in practice.
_MAX_PASSES = 4


class UnitAnalysis:
    """Computes summaries once, then checks every module against them."""

    def __init__(self, project: ProjectModel):
        self.project = project
        self.summaries: dict[str, str | None] = {}
        for _module, _cls, function in iter_all_functions(project):
            declared = SIGNATURE_RETURNS.get(function.qualname)
            if declared is None:
                declared = unit_of_name(function.name)
            self.summaries[function.qualname] = declared
        self._converge()

    def _converge(self) -> None:
        for _ in range(_MAX_PASSES):
            changed = False
            for module, cls, function in iter_all_functions(self.project):
                if self.summaries.get(function.qualname) is not None:
                    continue
                scan = _Scan(self, module, cls, emit=False)
                inferred = scan.run_function(function)
                if inferred is not None:
                    self.summaries[function.qualname] = inferred
                    changed = True
            if not changed:
                return

    def return_unit(self, qualname: str) -> str | None:
        return self.summaries.get(qualname)

    def check_all(self) -> list[RawFinding]:
        """All RL009 raw findings, sorted."""
        findings: list[RawFinding] = []
        for module in self.project.modules:
            body_scan = _Scan(self, module, None, emit=True)
            body_scan.run_module_body(module)
            findings.extend(body_scan.findings)
        for module, cls, function in iter_checked_functions(self.project):
            scan = _Scan(self, module, cls, emit=True)
            scan.run_function(function)
            findings.extend(scan.findings)
        return sorted(set(findings))


class _Scan:
    """One walk over a function (or module body) with a unit environment."""

    def __init__(
        self,
        analysis: UnitAnalysis,
        module: ModuleInfo,
        cls: ClassInfo | None,
        *,
        emit: bool,
    ):
        self.analysis = analysis
        self.project = analysis.project
        self.module = module
        self.cls = cls
        self.emit = emit
        self.findings: list[RawFinding] = []
        self.env: dict[str, str | None] = {}
        self.return_units: list[str] = []
        self.declared_return: str | None = None
        self.function_name = "<module>"

    # -- entry points ------------------------------------------------------

    def run_function(self, function: FunctionInfo) -> str | None:
        self.function_name = function.name
        self.declared_return = self.analysis.summaries.get(function.qualname)
        for param in function.params:
            self.env[param.name] = unit_of_name(param.name)
        self._stmts(function.node.body)
        merged: str | None = None
        for unit in self.return_units:
            if merged is None:
                merged = unit
            elif is_quantity(merged) and is_quantity(unit) and merged != unit:
                return None  # ambiguous returns: publish no summary
            elif not is_quantity(merged):
                merged = unit
        return merged

    def run_module_body(self, module: ModuleInfo) -> None:
        self._stmts(module.tree.body)

    # -- statements --------------------------------------------------------

    def _stmts(self, statements: list[ast.stmt]) -> None:
        for stmt in statements:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_unit = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value_unit, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.infer(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self.infer(stmt.value)
            current = self._read_target(stmt.target)
            if checks_in_binop(stmt.op) and mismatch(current, value_unit):
                self._report(
                    stmt,
                    f"augmented assignment combines {describe(current)} with "
                    f"{describe(value_unit)}",
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.infer(stmt.value)
                if unit is not None:
                    self.return_units.append(unit)
                if mismatch(self.declared_return, unit):
                    self._report(
                        stmt,
                        f"`{self.function_name}` declares a "
                        f"{describe(self.declared_return)} return but returns "
                        f"{describe(unit)}",
                    )
        elif isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            element = self.infer(stmt.iter)
            self._bind_target(stmt.target, element, None)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None, None)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed via the symbol table
        else:
            # Raise/Assert/Delete/match/...: infer contained expressions and
            # recurse into contained statement lists, in field order.
            for _name, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    self.infer(value)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.stmt):
                            self._stmt(item)
                        elif isinstance(item, ast.expr):
                            self.infer(item)

    def _read_target(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            unit = self.env.get(target.id)
            return unit if unit is not None else unit_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of_name(target.attr)
        return None

    def _bind_target(
        self, target: ast.expr, value_unit: str | None, value: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            if mismatch(declared, value_unit):
                self._report(
                    value if value is not None else target,
                    f"assigning {describe(value_unit)} value to `{target.id}` "
                    f"which is declared {describe(declared)}",
                )
            self.env[target.id] = declared if declared is not None else value_unit
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            if mismatch(declared, value_unit):
                self._report(
                    value if value is not None else target,
                    f"assigning {describe(value_unit)} value to attribute "
                    f"`{target.attr}` which is declared {describe(declared)}",
                )
        elif isinstance(target, ast.Subscript):
            declared = self.infer(target.value)
            if mismatch(declared, value_unit):
                self._report(
                    value if value is not None else target,
                    f"storing {describe(value_unit)} value into a container "
                    f"declared {describe(declared)}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._bind_target(sub_target, self.infer(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self._bind_target(sub_target, None, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None, None)

    # -- expressions -------------------------------------------------------

    def infer(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return unit_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            self.infer(expr.value)
            return unit_of_name(expr.attr)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Subscript):
            self.infer(expr.slice)
            return self.infer(expr.value)
        if isinstance(expr, ast.BinOp):
            left = self.infer(expr.left)
            right = self.infer(expr.right)
            if checks_in_binop(expr.op) and mismatch(left, right):
                self._report(
                    expr,
                    f"arithmetic combines {describe(left)} with "
                    f"{describe(right)}",
                )
            return combine_binop(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand)
        if isinstance(expr, ast.Compare):
            units = [self.infer(expr.left)]
            units.extend(self.infer(comparator) for comparator in expr.comparators)
            for index in range(len(units) - 1):
                if mismatch(units[index], units[index + 1]):
                    self._report(
                        expr,
                        f"comparing {describe(units[index])} value with "
                        f"{describe(units[index + 1])} value",
                    )
            return None
        if isinstance(expr, ast.BoolOp):
            units = [self.infer(value) for value in expr.values]
            merged: str | None = None
            for unit in units:
                merged = combine_add(merged, unit)
            return merged
        if isinstance(expr, ast.IfExp):
            self.infer(expr.test)
            body = self.infer(expr.body)
            orelse = self.infer(expr.orelse)
            if mismatch(body, orelse):
                self._report(
                    expr,
                    f"conditional arms disagree: {describe(body)} vs "
                    f"{describe(orelse)}",
                )
            return combine_add(body, orelse)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        if isinstance(expr, ast.NamedExpr):
            unit = self.infer(expr.value)
            self._bind_target(expr.target, unit, expr.value)
            return unit
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._infer_comprehension(expr)
        if isinstance(expr, ast.Starred):
            return self.infer(expr.value)
        # Tuples, lists, dicts, f-strings, lambdas, slices, ...: infer the
        # children for their side findings, publish no unit.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _infer_comprehension(self, expr) -> str | None:
        saved = dict(self.env)
        for generator in expr.generators:
            element = self.infer(generator.iter)
            self._bind_target(generator.target, element, None)
            for condition in generator.ifs:
                self.infer(condition)
        if isinstance(expr, ast.DictComp):
            self.infer(expr.key)
            self.infer(expr.value)
            unit = None
        else:
            unit = self.infer(expr.elt)
        self.env = saved
        return unit

    def _infer_call(self, call: ast.Call) -> str | None:
        resolution = self.project.resolve_call_target(
            self.module, call.func, class_ctx=self.cls
        )
        for keyword in call.keywords:
            self.infer(keyword.value)
        arg_units = [self.infer(arg) for arg in call.args]
        tail = self._call_tail(call.func)
        if resolution is not None and resolution.kind == "function":
            function: FunctionInfo = resolution.value
            self._check_args(call, function.params, function.name,
                             skip_self=self._is_bound_call(call.func, function))
            return self.analysis.return_unit(function.qualname)
        if resolution is not None and resolution.kind == "class":
            params = self.project.constructor_params(resolution.value)
            if params is not None:
                self._check_args(call, params, resolution.value.name)
            return None
        if tail in _MERGING_PASSTHROUGH:
            merged: str | None = None
            skip = 1 if tail == "where" else 0
            for unit in arg_units[skip:]:
                if mismatch(merged, unit):
                    self._report(
                        call,
                        f"`{tail}(...)` merges {describe(merged)} with "
                        f"{describe(unit)}",
                    )
                merged = combine_add(merged, unit)
            return merged
        if tail in _VALUE_PASSTHROUGH:
            for unit in arg_units:
                if unit is not None:
                    return unit
            return None
        if tail is not None:
            # Unresolved call, but the callee's *name* states its unit
            # (`sim.idle_frequency_mhz(...)`): trust the contract.
            return unit_of_name(tail)
        return None

    @staticmethod
    def _call_tail(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @staticmethod
    def _is_bound_call(func: ast.expr, function: FunctionInfo) -> bool:
        """True when the first parameter (self/cls) is bound by the syntax."""
        return function.is_method and isinstance(func, ast.Attribute)

    def _check_args(
        self,
        call: ast.Call,
        params: list[Param],
        callee: str,
        *,
        skip_self: bool = False,
    ) -> None:
        effective = params[1:] if skip_self and params else params
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(effective):
                continue
            self._check_one_arg(arg, effective[index], callee)
        by_name = {param.name: param for param in effective}
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            param = by_name.get(keyword.arg)
            if param is not None:
                self._check_one_arg(keyword.value, param, callee)

    def _check_one_arg(self, arg: ast.expr, param: Param, callee: str) -> None:
        declared = unit_of_name(param.name)
        if not is_quantity(declared):
            return
        actual = self.infer(arg)
        if mismatch(declared, actual):
            self._report(
                arg,
                f"passing {describe(actual)} value to parameter "
                f"`{param.name}` ({describe(declared)}) of `{callee}`",
            )

    # -- reporting ---------------------------------------------------------

    def _report(self, node: ast.AST, message: str) -> None:
        if not self.emit:
            return
        self.findings.append(
            (
                self.module.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                f"unit mismatch: {message}",
            )
        )
