"""Seed-provenance taint analysis (the RL010 engine).

RL001 bans *call sites* that touch ``np.random``/stdlib ``random``
directly; this analysis generalizes the contract to *flows*: any RNG
value whose provenance is not an :class:`repro.rng.RngStreams` stream or
an explicit seed must never reach the deterministic physics — code under
``atm/``, ``core/``, ``experiments/``, or ``fastpath/``.

Taint sources (the value is an unseeded / process-seeded generator):

* ``np.random.default_rng()`` / ``random.Random()`` called with **no**
  arguments, or with an argument that is itself tainted;
* any draw through the module-level global state (``np.random.rand(...)``,
  ``random.random()``, ...);
* ``os.urandom`` / the ``secrets`` module.

Clean by construction: ``RngStreams.stream/fresh/spawn`` results (matched
both by resolution and by attribute name, so ``streams.stream("x")``
stays clean behind any alias) and generators seeded from a ``seed``
parameter or constant.

Propagation is flow-insensitive per function (assignments and returns)
and interprocedural through two global fixed points: *returns-tainted*
function summaries and a tainted-parameter set fed by every resolved call
site.  Findings anchor where the taint crosses into a protected zone —
the offending call argument or the in-zone construction site.
"""

from __future__ import annotations

import ast

from .project import ProjectModel, iter_all_functions
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, dotted_name

#: External callables that *construct* a generator; unseeded when called
#: with no arguments (or a tainted one).
_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: External name prefixes whose call results are always tainted: draws
#: from process-global RNG state or true entropy.
_ALWAYS_TAINTED_PREFIXES = ("numpy.random.", "random.", "secrets.")

_ALWAYS_TAINTED_EXACT = frozenset({"os.urandom", "uuid.uuid4"})

#: Attribute names that mint named deterministic streams (RngStreams API).
_CLEAN_STREAM_ATTRS = frozenset({"stream", "fresh", "spawn"})

#: An anchored message (rule id added by RL010).
RawFinding = tuple[str, int, int, str]

_MAX_PASSES = 6


def _external_spelling(project: ProjectModel, module: ModuleInfo, func: ast.expr,
                       cls: ClassInfo | None) -> str | None:
    """Canonical dotted spelling of an external callee, if resolvable."""
    resolution = project.resolve_call_target(module, func, class_ctx=cls)
    if resolution is not None and resolution.kind == "external":
        return str(resolution.value)
    if resolution is None:
        # No import binding in scope (fixture snippets): fall back to the
        # conventional alias spelling.
        spelled = dotted_name(func)
        if spelled is not None and spelled.startswith("np.random."):
            return "numpy." + spelled.split(".", 1)[1]
        if spelled is not None and spelled.startswith(
            ("numpy.random.", "random.", "secrets.", "os.urandom")
        ):
            return spelled
    return None


class TaintAnalysis:
    """Two-level fixed point: function summaries + tainted parameters."""

    def __init__(self, project: ProjectModel):
        self.project = project
        #: qualname -> True when the function can return a tainted value.
        self.returns_tainted: dict[str, bool] = {}
        #: (qualname, param name) pairs observed to receive tainted args.
        self.tainted_params: set[tuple[str, str]] = set()
        self._converge()

    def _converge(self) -> None:
        for _ in range(_MAX_PASSES):
            changed = False
            for module, cls, function in iter_all_functions(self.project):
                scan = _TaintScan(self, module, cls, function, emit=False)
                scan.run()
                if scan.returns_tainted and not self.returns_tainted.get(
                    function.qualname
                ):
                    self.returns_tainted[function.qualname] = True
                    changed = True
                before = len(self.tainted_params)
                self.tainted_params |= scan.new_tainted_params
                changed = changed or len(self.tainted_params) != before
            if not changed:
                return

    def check_all(self) -> list[RawFinding]:
        """All RL010 raw findings, sorted.

        Every module (including root-only ones) contributes call sites —
        a test handing an unseeded generator to experiment code is still
        a broken flow — but findings anchor at the crossing, which the
        caller's suppression map governs.
        """
        findings: list[RawFinding] = []
        for module, cls, function in iter_all_functions(self.project):
            scan = _TaintScan(self, module, cls, function, emit=True)
            scan.run()
            findings.extend(scan.findings)
        return sorted(set(findings))


class _TaintScan:
    """One pass over a function: propagate locally, record crossings."""

    def __init__(
        self,
        analysis: TaintAnalysis,
        module: ModuleInfo,
        cls: ClassInfo | None,
        function: FunctionInfo,
        *,
        emit: bool,
    ):
        self.analysis = analysis
        self.project = analysis.project
        self.module = module
        self.cls = cls
        self.function = function
        self.emit = emit
        self.tainted: set[str] = {
            param.name
            for param in function.params
            if (function.qualname, param.name) in analysis.tainted_params
        }
        self.returns_tainted = False
        self.new_tainted_params: set[tuple[str, str]] = set()
        self.findings: list[RawFinding] = []

    def run(self) -> None:
        # Two local passes so a use-before-def inside a loop still sees the
        # taint established further down the body.
        for _ in range(2):
            before = len(self.tainted)
            for stmt in ast.walk(self.function.node):
                self._visit(stmt)
            if len(self.tainted) == before:
                break

    # -- node handling -----------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            if self._is_tainted(node.value):
                for target in node.targets:
                    self._taint_target(target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if self._is_tainted(node.value):
                self._taint_target(node.target)
        elif isinstance(node, ast.NamedExpr):
            if self._is_tainted(node.value):
                self._taint_target(node.target)
        elif isinstance(node, ast.Return) and node.value is not None:
            if self._is_tainted(node.value):
                self.returns_tainted = True
        elif isinstance(node, ast.Call):
            self._visit_call(node)

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id in ("self", "cls"):
            self.tainted.add(f"self.{target.attr}")

    def _visit_call(self, call: ast.Call) -> None:
        """Record taint crossing into resolved callees; report zone entries."""
        resolution = self.project.resolve_call_target(
            self.module, call.func, class_ctx=self.cls
        )
        target_params = None
        target_module = None
        callee_name = None
        if resolution is not None and resolution.kind == "function":
            function: FunctionInfo = resolution.value
            params = function.params
            if function.is_method and isinstance(call.func, ast.Attribute):
                params = params[1:]
            target_params = (function.qualname, params)
            target_module = resolution.module
            callee_name = function.name
        elif resolution is not None and resolution.kind == "class":
            params = self.project.constructor_params(resolution.value)
            if params is not None:
                target_params = (resolution.value.qualname, params)
            target_module = resolution.module
            callee_name = resolution.value.name
        if target_params is None:
            return
        qualname, params = target_params
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                continue
            if self._is_tainted(arg):
                self._cross(call, arg, qualname, params[index].name,
                            target_module, callee_name)
        by_name = {param.name: param for param in params}
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in by_name:
                continue
            if self._is_tainted(keyword.value):
                self._cross(call, keyword.value, qualname, keyword.arg,
                            target_module, callee_name)

    def _cross(
        self,
        call: ast.Call,
        arg: ast.expr,
        qualname: str,
        param_name: str,
        target_module: ModuleInfo | None,
        callee_name: str | None,
    ) -> None:
        self.new_tainted_params.add((qualname, param_name))
        if (
            self.emit
            and target_module is not None
            and target_module.zone is not None
        ):
            self._report(
                arg,
                f"unseeded RNG flows into `{callee_name}` "
                f"(parameter `{param_name}`, {target_module.zone}/ code); "
                "derive it from RngStreams (repro.rng) instead",
            )

    # -- taint of expressions ----------------------------------------------

    def _is_tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                "self",
                "cls",
            ):
                return f"self.{expr.attr}" in self.tainted
            return False
        if isinstance(expr, ast.Call):
            return self._call_is_tainted(expr)
        if isinstance(expr, (ast.IfExp,)):
            return self._is_tainted(expr.body) or self._is_tainted(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            return any(self._is_tainted(value) for value in expr.values)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self._is_tainted(element) for element in expr.elts)
        if isinstance(expr, ast.NamedExpr):
            return self._is_tainted(expr.value)
        return False

    def _call_is_tainted(self, call: ast.Call) -> bool:
        # Named deterministic streams are clean regardless of receiver.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _CLEAN_STREAM_ATTRS
        ):
            return False
        external = _external_spelling(
            self.project, self.module, call.func, self.cls
        )
        if external is not None:
            if external in _ALWAYS_TAINTED_EXACT:
                self._note_source(call, external)
                return True
            if external in _CONSTRUCTORS:
                if not call.args and not call.keywords:
                    self._note_source(call, external + "()")
                    return True
                tainted = any(self._is_tainted(arg) for arg in call.args)
                if tainted:
                    self._note_source(call, external + "(<tainted>)")
                return tainted
            if external.startswith(_ALWAYS_TAINTED_PREFIXES):
                self._note_source(call, external)
                return True
            return False
        resolution = self.project.resolve_call_target(
            self.module, call.func, class_ctx=self.cls
        )
        if resolution is not None and resolution.kind == "function":
            return bool(
                self.analysis.returns_tainted.get(resolution.value.qualname)
            )
        return False

    def _note_source(self, call: ast.Call, spelling: str) -> None:
        """Report an unseeded source *constructed inside* a protected zone."""
        if self.emit and self.module.zone is not None:
            self._report(
                call,
                f"unseeded RNG source `{spelling}` in {self.module.zone}/ "
                "code; derive randomness from RngStreams (repro.rng)",
            )

    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            (
                self.module.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )
