"""sha256-keyed on-disk cache of extracted modules.

Parsing and symbol extraction dominate a ``--project`` run on a warm
tree, so :class:`ModuleCache` persists each file's pickled
:class:`~repro.lint.dataflow.symbols.ModuleInfo` keyed by the sha256 of
its *content* (plus the analyzer schema version).  A repeated run on an
unchanged tree becomes a read-and-unpickle loop; any edit changes the
key, so stale entries are simply never read again.

The cache is purely an accelerator: every miss, corruption, or I/O error
falls back to a fresh parse, and findings are byte-identical with the
cache on, off, cold, or warm.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

from .symbols import ModuleInfo

#: Bump when ModuleInfo's shape (or any extraction detail) changes, so
#: caches written by older analyzers are ignored rather than misread.
CACHE_SCHEMA_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def source_sha256(source: str) -> str:
    """Content key for a module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ModuleCache:
    """Pickle store of extracted modules under ``directory``.

    A ``None`` directory disables the cache (every lookup misses and
    stores are dropped), which keeps call sites branch-free.
    """

    def __init__(self, directory: str | Path | None):
        self._dir = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self._dir is not None

    def _entry_path(self, sha256: str, display_path: str) -> Path:
        assert self._dir is not None
        # Identical content at two paths (empty __init__.py files) must not
        # share an entry — ModuleInfo embeds the path and module name — so
        # the filename carries a digest of the path alongside the content key.
        tag = hashlib.sha256(display_path.encode("utf-8")).hexdigest()[:12]
        return self._dir / f"{sha256[:48]}-{tag}.v{CACHE_SCHEMA_VERSION}.pkl"

    def get(self, sha256: str, display_path: str) -> ModuleInfo | None:
        """Cached module for ``(sha256, path)``, or ``None`` on miss/error."""
        if self._dir is None:
            return None
        try:
            payload = self._entry_path(sha256, display_path).read_bytes()
            info = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if (
            not isinstance(info, ModuleInfo)
            or info.sha256 != sha256
            or info.path != display_path
        ):
            self.misses += 1
            return None
        self.hits += 1
        return info

    def put(self, info: ModuleInfo) -> None:
        """Persist ``info``; failures are silent (the cache is optional)."""
        if self._dir is None:
            return
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            target = self._entry_path(info.sha256, info.path)
            # Write-then-rename so concurrent runs never read a torn pickle.
            # The pid only uniquifies the temp name; no behaviour depends
            # on its value.
            temporary = target.with_suffix(f".tmp.{os.getpid()}")  # repro-lint: disable=RL008
            temporary.write_bytes(pickle.dumps(info, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(temporary, target)
        except OSError:
            pass
