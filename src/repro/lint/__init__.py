"""``repro.lint`` — AST-based domain linter for the reproduction library.

The interpreter never checks the conventions this library's correctness
rests on: quantities carry unit suffixes (:mod:`repro.units`), randomness
flows through named :class:`repro.rng.RngStreams`, and raises derive from
:class:`repro.errors.ReproError`.  This package enforces them statically.

Run it as ``python -m repro.lint [paths]`` or ``python -m repro lint``.

Rules
-----
======  ==========================  ============================================
ID      Name                        Invariant
======  ==========================  ============================================
RL001   unseeded-rng                all randomness via named ``RngStreams``
RL002   wall-clock-in-sim           simulated time only; no host clock reads
RL003   bare-exception              raises are ``ReproError``; no bare except
RL004   unit-suffix                 float quantities carry ``_mhz``/``_ps``/...
RL005   float-equality              no ``==`` on computed float expressions
RL006   magic-platform-constant     platform numbers come from ``repro.units``
======  ==========================  ============================================

Suppress a finding inline with ``# repro-lint: disable=RL001`` (comma-
separated ids, or ``all``) on the flagged line, or grandfather it in a
``--baseline`` JSON file.
"""

from __future__ import annotations

from .engine import Finding, LintContext, Rule, lint_file, lint_paths, lint_source
from .rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
