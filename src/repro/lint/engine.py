"""Core linting engine: context, rule protocol, single-walk dispatch.

Every rule declares the AST node types it is interested in; the engine
walks each file's tree exactly once, dispatching nodes to interested
rules.  Files are linted in parallel with :mod:`concurrent.futures` when
enough of them are queued to amortize process start-up.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from ..errors import LintError

#: Directory names skipped when a directory argument is expanded.  Explicit
#: file arguments are never filtered, so fixture corpora stay lintable.
EXCLUDED_DIR_NAMES = frozenset(
    {"fixtures", "__pycache__", ".git", ".venv", "build", "dist"}
)

#: Number of queued files below which linting stays in-process; process
#: pool start-up costs more than the walk for small batches.
PARALLEL_THRESHOLD = 12

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: ID [severity] msg``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form used by ``--format=json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


class LintContext:
    """Per-file state shared by every rule during one walk.

    Parameters
    ----------
    path:
        Display path for findings; also drives the default file
        classification below.
    source:
        File contents.
    is_test / in_repro_src:
        Override the path-derived classification.  Fixture tests use this
        to lint a snippet *as if* it lived under ``src/repro/``.
    """

    def __init__(
        self,
        path: str,
        source: str,
        *,
        is_test: bool | None = None,
        in_repro_src: bool | None = None,
    ):
        self.path = str(PurePosixPath(Path(path).as_posix()))
        self.source = source
        parts = PurePosixPath(self.path).parts
        self.filename = parts[-1] if parts else self.path
        if is_test is None:
            is_test = "tests" in parts or self.filename.startswith("test_")
        if in_repro_src is None:
            in_repro_src = any(
                parts[i] == "src" and parts[i + 1] == "repro"
                for i in range(len(parts) - 1)
            )
        #: True for files under ``tests/`` (rules about library internals
        #: do not apply there).
        self.is_test = is_test
        #: True for files that belong to the ``repro`` package proper.
        self.in_repro_src = in_repro_src
        self.suppressions = parse_suppressions(source)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` carries a disable comment covering ``rule_id``."""
        disabled = self.suppressions.get(line)
        if not disabled:
            return False
        return "all" in disabled or rule_id in disabled


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Line -> rule-ids disabled by a ``# repro-lint: disable=`` comment."""
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            suppressions[lineno] = frozenset(ids)
    return suppressions


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`visit`, which
    is called once per node whose type appears in :attr:`interests`.
    ``parents`` is the ancestor stack, outermost first, so rules needing
    binding context (keyword names, assignment targets) can look up.
    """

    rule_id: str = "RL000"
    severity: str = "error"
    summary: str = ""
    #: One-line rationale shown by ``--list-rules``.
    rationale: str = ""
    interests: tuple[type[ast.AST], ...] = ()

    def applies(self, ctx: LintContext) -> bool:
        """Whether this rule runs at all for the file described by ``ctx``."""
        return True

    def visit(
        self, node: ast.AST, parents: Sequence[ast.AST], ctx: LintContext
    ) -> Iterable[Finding]:
        """Yield findings for ``node``; called only for interesting types."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ProjectRule:
    """Base class for project-wide (interprocedural) lint rules.

    Unlike :class:`Rule`, a project rule sees the whole
    :class:`~repro.lint.dataflow.project.ProjectModel` at once and is
    responsible for anchoring each finding at a concrete file and line.
    Suppression comments and baselines are applied by the caller
    (:func:`~repro.lint.dataflow.project.analyze_project`), exactly as for
    per-file rules.
    """

    rule_id: str = "RL900"
    severity: str = "error"
    summary: str = ""
    rationale: str = ""

    def check(self, project) -> Iterable[Finding]:
        """Yield findings for the whole project."""
        raise NotImplementedError

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a :class:`Finding` at an explicit location."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Sequence[Rule] | None = None,
    is_test: bool | None = None,
    in_repro_src: bool | None = None,
) -> list[Finding]:
    """Lint ``source`` and return sorted, non-suppressed findings."""
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    ctx = LintContext(path, source, is_test=is_test, in_repro_src=in_repro_src)
    try:
        tree = ast.parse(source, filename=ctx.path)
    except SyntaxError as exc:
        return [
            Finding(
                path=ctx.path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="PARSE",
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
        ]

    active = [rule for rule in rules if rule.applies(ctx)]
    by_type: dict[type, list[Rule]] = {}
    for rule in active:
        for node_type in rule.interests:
            by_type.setdefault(node_type, []).append(rule)
    if not by_type:
        return []

    findings: list[Finding] = []
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        for rule in by_type.get(type(node), ()):
            for finding in rule.visit(node, parents, ctx):
                if not ctx.is_suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
        child_parents = parents + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_parents))
    return sorted(findings)


def lint_file(
    path: str | Path,
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one file from disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {file_path}: {exc}") from exc
    return lint_source(source, str(file_path), rules=rules)


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand path arguments into a sorted, de-duplicated ``.py`` file list.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIR_NAMES`;
    explicitly named files are always included.
    """
    seen: set[Path] = set()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                rel = candidate.relative_to(path)
                if any(part in EXCLUDED_DIR_NAMES for part in rel.parts[:-1]):
                    continue
                if candidate not in seen:
                    seen.add(candidate)
                    files.append(candidate)
        elif path.is_file():
            if path not in seen:
                seen.add(path)
                files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return files


def _lint_one(path_str: str) -> list[Finding]:
    """Picklable worker: lint ``path_str`` with the full default rule set."""
    return lint_file(path_str)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    jobs: int | None = None,
) -> list[Finding]:
    """Lint every python file reachable from ``paths``.

    ``jobs=1`` forces in-process linting; otherwise a process pool is used
    once the batch is large enough to pay for it.  Results are sorted so
    output is deterministic regardless of scheduling.
    """
    files = discover_files(paths)
    findings: list[Finding] = []
    use_pool = (
        rules is None  # custom rule objects may not be picklable
        and jobs != 1
        and len(files) >= PARALLEL_THRESHOLD
    )
    if use_pool:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for batch in pool.map(_lint_one, [str(f) for f in files]):
                    findings.extend(batch)
            return sorted(findings)
        except (OSError, ImportError, PermissionError):
            findings.clear()  # fall back to serial linting below
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules))
    return sorted(findings)
