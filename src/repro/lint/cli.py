"""Argument handling for ``python -m repro.lint`` and ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage / tooling error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from ..errors import LintError
from .baseline import Baseline
from .engine import discover_files, lint_paths
from .report import format_json, format_rule_table, format_text
from .rules import ALL_RULES, get_rules

#: Default lint targets when none are given, filtered to those that exist.
DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        help="JSON file of grandfathered findings (see repro.lint.baseline)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (1 forces in-process linting)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(format_rule_table(ALL_RULES))
        return 0
    paths = args.paths or [path for path in DEFAULT_PATHS if _exists(path)]
    if not paths:
        print("error: no lint targets (give paths explicitly)", file=sys.stderr)
        return 2
    rules = None
    if args.select:
        rules = get_rules([part.strip() for part in args.select.split(",")])
    files_checked = len(discover_files(paths))
    findings = lint_paths(paths, rules=rules, jobs=args.jobs)
    if args.baseline:
        findings = Baseline.load(args.baseline).filter(findings)
    report = (
        format_json(findings, files_checked=files_checked)
        if args.format == "json"
        else format_text(findings, files_checked=files_checked)
    )
    print(report)
    return 1 if findings else 0


def _exists(path: str) -> bool:
    from pathlib import Path

    return Path(path).exists()


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based domain linter for the ATM reproduction",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
