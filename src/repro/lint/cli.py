"""Argument handling for ``python -m repro.lint`` and ``repro lint``.

Two modes share one option surface:

* default (per-file) — the v1 single-walk rules RL001–RL008;
* ``--project`` — the v2 interprocedural rules RL009–RL012, which build
  a whole-program symbol table / call graph first (see
  :mod:`repro.lint.dataflow`).

Exit codes: 0 clean, 1 findings, 2 usage / tooling error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from ..errors import LintError
from .baseline import Baseline
from .engine import discover_files, lint_paths
from .report import format_json, format_rule_table, format_sarif, format_text
from .rules import ALL_RULES, PROJECT_RULES, get_project_rules, get_rules

#: Default lint targets when none are given, filtered to those that exist.
DEFAULT_PATHS = ("src", "tests")

#: Default ``--project`` targets: analyze src, treat tests as roots only
#: (their references keep API alive for RL012 / anchor RL010 flows, but
#: findings inside tests themselves are not interesting).
PROJECT_DEFAULT_PATHS = ("src",)
PROJECT_DEFAULT_ROOT_ONLY = ("tests",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests; "
        "with --project: src, with tests as reference roots)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the interprocedural project rules (RL009-RL012) instead "
        "of the per-file rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        help="JSON file of grandfathered findings (see repro.lint.baseline)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (1 forces in-process linting; per-file "
        "mode only)",
    )
    parser.add_argument(
        "--root-only",
        action="append",
        default=None,
        metavar="PATH",
        help="(--project) extra paths whose modules contribute reachability "
        "roots and call sites but are never checked (default: tests)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="parsed-module cache directory for --project runs "
        "(default: .repro-lint-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the parsed-module cache for --project runs",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(format_rule_table(ALL_RULES + PROJECT_RULES))
        return 0
    if args.project:
        return _run_project(args)
    paths = args.paths or [path for path in DEFAULT_PATHS if _exists(path)]
    if not paths:
        print("error: no lint targets (give paths explicitly)", file=sys.stderr)
        return 2
    rules = None
    if args.select:
        rules = get_rules(_split_select(args.select))
    files_checked = len(discover_files(paths))
    findings = lint_paths(paths, rules=rules, jobs=args.jobs)
    if args.baseline:
        findings = Baseline.load(args.baseline).filter(findings)
    print(_render(args, findings, files_checked, ALL_RULES))
    return 1 if findings else 0


def _run_project(args: argparse.Namespace) -> int:
    """The ``--project`` mode: whole-program rules over a module set."""
    from .dataflow.project import analyze_project

    paths = args.paths or [
        path for path in PROJECT_DEFAULT_PATHS if _exists(path)
    ]
    if not paths:
        print("error: no lint targets (give paths explicitly)", file=sys.stderr)
        return 2
    if args.root_only is not None:
        root_only = list(args.root_only)
    else:
        root_only = [
            path
            for path in PROJECT_DEFAULT_ROOT_ONLY
            if _exists(path) and path not in paths
        ]
    rules = (
        get_project_rules(_split_select(args.select))
        if args.select
        else None
    )
    from .dataflow.cache import DEFAULT_CACHE_DIR

    cache_dir = (
        None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    )
    findings = analyze_project(
        paths,
        rules=rules,
        root_only_paths=root_only,
        cache_dir=cache_dir,
    )
    if args.baseline:
        findings = Baseline.load(args.baseline).filter(findings)
    files_checked = len(discover_files(paths))
    print(_render(args, findings, files_checked, PROJECT_RULES))
    return 1 if findings else 0


def _render(args, findings, files_checked: int, rules) -> str:
    if args.format == "json":
        return format_json(findings, files_checked=files_checked)
    if args.format == "sarif":
        return format_sarif(findings, rules=rules)
    return format_text(findings, files_checked=files_checked)


def _split_select(select: str) -> list[str]:
    return [part.strip() for part in select.split(",") if part.strip()]


def _exists(path: str) -> bool:
    from pathlib import Path

    return Path(path).exists()


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based domain linter for the ATM reproduction",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
