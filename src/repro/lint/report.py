"""Finding renderers for the lint CLI (``--format=text|json``)."""

from __future__ import annotations

import json
from collections import Counter

from .engine import Finding, Rule


def format_text(findings: list[Finding], *, files_checked: int) -> str:
    """GCC-style one-line-per-finding report plus a summary tail."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def format_json(findings: list[Finding], *, files_checked: int) -> str:
    """Machine-readable report: stable keys, findings in sorted order."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
    )


def format_rule_table(rules: tuple[Rule, ...]) -> str:
    """The ``--list-rules`` listing."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  {rule.summary:<24} [{rule.severity}]")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
