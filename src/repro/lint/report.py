"""Finding renderers for the lint CLI (``--format=text|json|sarif``)."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from .engine import Finding, Rule

#: SARIF 2.1.0 is the interchange schema GitHub code scanning ingests.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_text(findings: list[Finding], *, files_checked: int) -> str:
    """GCC-style one-line-per-finding report plus a summary tail."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def format_json(findings: list[Finding], *, files_checked: int) -> str:
    """Machine-readable report: stable keys, findings in sorted order."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )


def format_sarif(
    findings: list[Finding], *, rules: Sequence[object] = ()
) -> str:
    """SARIF 2.1.0 report (one run, driver ``repro.lint``).

    ``rules`` is any iterable of rule objects with ``rule_id`` /
    ``summary`` / ``rationale`` attributes; only rules that actually
    produced findings (plus the ones passed) are described, which keeps
    the document small and deterministic.
    """
    described = {}
    for rule in rules:
        described[rule.rule_id] = {
            "id": rule.rule_id,
            "name": getattr(rule, "summary", "") or rule.rule_id,
            "shortDescription": {
                "text": getattr(rule, "summary", "") or rule.rule_id
            },
            "fullDescription": {"text": getattr(rule, "rationale", "")},
        }
    for finding in findings:
        described.setdefault(
            finding.rule_id,
            {
                "id": finding.rule_id,
                "name": finding.rule_id,
                "shortDescription": {"text": finding.rule_id},
            },
        )
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error" if finding.severity == "error" else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            described[rule_id]
                            for rule_id in sorted(described)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def format_rule_table(rules: tuple[Rule, ...]) -> str:
    """The ``--list-rules`` listing."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  {rule.summary:<24} [{rule.severity}]")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
