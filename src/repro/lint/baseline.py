"""Baseline files: grandfather known findings without silencing new ones.

A baseline is a JSON document::

    {
      "version": 1,
      "entries": [
        {"path": "src/repro/foo.py", "rule": "RL004",
         "reason": "public API rename deferred to the v2 break"}
      ]
    }

An entry matches every finding of ``rule`` in ``path`` (matched on
trailing posix components, so the file can be written from the repo root
and used from anywhere).  Matching on path+rule rather than line numbers
keeps baselines stable across unrelated edits to the same file; the
``reason`` field is mandatory so every grandfathered finding carries its
justification in-tree.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath

from ..errors import LintError
from .engine import Finding


class Baseline:
    """Parsed baseline entries with suffix-path matching."""

    def __init__(self, entries: list[dict]):
        self.entries = entries
        self._index: set[tuple[tuple[str, ...], str]] = {
            (PurePosixPath(entry["path"]).parts, entry["rule"])
            for entry in entries
        }

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read and validate a baseline JSON file."""
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(document, dict) or not isinstance(
            document.get("entries"), list
        ):
            raise LintError(f"baseline {path} must be an object with 'entries'")
        entries = document["entries"]
        for index, entry in enumerate(entries):
            for field in ("path", "rule", "reason"):
                if not isinstance(entry.get(field), str) or not entry[field]:
                    raise LintError(
                        f"baseline {path} entry {index} needs a non-empty "
                        f"'{field}' string"
                    )
        return cls(entries)

    def covers(self, finding: Finding) -> bool:
        """True when some entry grandfathers ``finding``."""
        finding_parts = PurePosixPath(finding.path).parts
        for entry_parts, rule in self._index:
            if rule != finding.rule_id:
                continue
            if len(entry_parts) <= len(finding_parts) and (
                finding_parts[len(finding_parts) - len(entry_parts):]
                == entry_parts
            ):
                return True
        return False

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Drop grandfathered findings, keeping order."""
        return [finding for finding in findings if not self.covers(finding)]
