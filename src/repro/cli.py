"""Command-line interface: characterize, deploy, schedule, reproduce.

Mirrors the stages a vendor/operator would actually run:

``python -m repro experiment <id|all> [--jobs N]``
    Regenerate one (or every) paper table/figure and print the report;
    ``--jobs`` fans the suite across a process pool with identical output.
``python -m repro bench [--repeat N] [--baseline-s S]``
    Time the experiment suite and write the BENCH_solver.json artifact.
``python -m repro characterize [--seed N] [--random] [--out FILE]``
    Run the Fig. 6 methodology on the testbed (or a sampled chip) and
    optionally save the limit table as JSON.
``python -m repro deploy --limits FILE [--rollback N] [--out FILE]``
    Run the stress-test deployment against saved limits.
``python -m repro schedule --critical APP --background APP [--qos X]``
    Evaluate the Fig. 14 scenarios for one application pair.
``python -m repro trace <id>``
    Run one experiment under full observability and show its event trace,
    writing the JSONL stream plus run manifest.
``python -m repro metrics <id>``
    Same observed run, reported as the instrument summary table.
``python -m repro obs selfcheck``
    End-to-end smoke test of the observability pipeline.
``python -m repro list-workloads``
    Show every modeled workload and its observables.
``python -m repro lint [paths]``
    Run the domain linter (also available as ``python -m repro.lint``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .atm.chip_sim import ChipSim
from .core.characterize import Characterizer
from .core.limits import LimitTable
from .core.manager import AtmManager
from .core.persistence import (
    load_limit_table,
    save_deployment,
    save_limit_table,
)
from .core.stress_test import StressTestProcedure
from .errors import ReproError
from .experiments import REGISTRY, run_experiment
from .experiments.common import run_observed
from .lint.cli import add_lint_arguments, run_lint
from .obs.metrics import render_summary_table
from .obs.selfcheck import run_selfcheck
from .obs.sinks import event_to_json_line, read_jsonl
from .rng import RngStreams
from .silicon import power7plus_testbed, sample_chip
from .workloads.classification import is_critical
from .workloads.registry import ALL_WORKLOADS, get_workload


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id == "all":
        # Local imports: the profiling tracer (the RL002-exempt wall-clock
        # path) only loads when the harness digest actually needs it.
        from .analysis.report import HEADLINE_METRICS
        from .obs.profiling import wall_clock_tick_source
        from .obs.trace import Tracer

        tracer = Tracer(wall_source=wall_clock_tick_source)
        results = {}
        pool = None
        futures = {}
        if args.jobs > 1:
            # Fan the suite out, then consume results in registry order so
            # stdout is laid out exactly as a serial run; only the digest's
            # wall-clock column can differ.
            from concurrent.futures import ProcessPoolExecutor

            from .experiments.runner import _run_one

            pool = ProcessPoolExecutor(max_workers=args.jobs)
            futures = {
                experiment_id: pool.submit(_run_one, experiment_id, args.seed)
                for experiment_id in REGISTRY
            }
        try:
            for experiment_id in REGISTRY:
                with tracer.span("experiment", id=experiment_id):
                    if pool is not None:
                        result = futures[experiment_id].result()
                    else:
                        result = run_experiment(experiment_id, seed=args.seed)
                results[experiment_id] = result
                print(result.render())
                print()
        finally:
            if pool is not None:
                pool.shutdown()
        print("digest (wall-clock per experiment):")
        for span, (experiment_id, result) in zip(
            tracer.finished, results.items()
        ):
            metric_name = HEADLINE_METRICS.get(experiment_id)
            if metric_name is not None and metric_name in result.metrics:
                headline = f"{metric_name}={result.metrics[metric_name]:.4g}"
            else:
                headline = "(no headline metric)"
            print(f"  {experiment_id:<16} {span.wall_s:7.2f}s  {headline}")
        return 0
    print(run_experiment(args.id, seed=args.seed).render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.bench import compare_to_baseline, run_bench

    ids = (
        [part.strip() for part in args.experiments.split(",") if part.strip()]
        if args.experiments
        else None
    )
    report = run_bench(
        ids,
        seed=args.seed,
        jobs=args.jobs,
        repeat=args.repeat,
        baseline_total_s=args.baseline_s,
        out_path=args.out,
        fleet_chips=args.fleet_chips,
    )
    print(report.render())
    print(f"bench report written to {args.out}")
    if args.compare:
        ok, text = compare_to_baseline(
            report, args.compare, threshold=args.compare_threshold
        )
        print(text)
        if not ok:
            return 1
    return 0


def _cmd_fleet_characterize(args: argparse.Namespace) -> int:
    from .atm.chip_sim import MarginMode
    from .core.fleet import characterize_fleet, run_fleet_observed

    kwargs = dict(
        chunk_size=args.chunk,
        trials=args.trials,
        n_cores=args.cores,
        mode=MarginMode(args.mode),
        reduction_steps=args.reduction,
        population=not args.chip_loop,
    )
    if args.out:
        run = run_fleet_observed(
            args.chips, out_dir=args.out, seed=args.seed, **kwargs
        )
        print(run.report.render())
        print(f"\nevent stream: {run.events_path} ({run.event_count} events)")
        print(f"manifest: {run.manifest_path}")
        return 0
    print(characterize_fleet(args.chips, seed=args.seed, **kwargs).render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    run = run_observed(args.id, seed=args.seed, out_dir=args.out)
    print(run.manifest.render())
    events = list(read_jsonl(run.events_path))
    counts: dict[str, int] = {}
    for event in events:
        name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
    print(f"event stream: {run.events_path} ({run.event_count} events)")
    for name in sorted(counts):
        print(f"  {name}: {counts[name]}")
    if args.tail > 0 and events:
        tail = events[-args.tail:]
        print(f"last {len(tail)} event(s):")
        for event in tail:
            print(f"  {event_to_json_line(event)}")
    print(f"manifest: {run.manifest_path}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    run = run_observed(args.id, seed=args.seed, out_dir=args.out)
    print(run.manifest.render())
    print()
    print(
        render_summary_table(
            run.manifest.metrics_summary, title=f"metrics: {args.id}"
        )
    )
    print(f"\nevent stream: {run.events_path}")
    print(f"manifest: {run.manifest_path}")
    return 0


def _cmd_obs_selfcheck(_args: argparse.Namespace) -> int:
    ok, report = run_selfcheck()
    print(report)
    return 0 if ok else 1


def _cmd_characterize(args: argparse.Namespace) -> int:
    characterizer = Characterizer(RngStreams(args.seed), trials=args.trials)
    if args.random:
        chip = sample_chip(args.seed)
        characterization = characterizer.characterize_chip(chip)
        table = LimitTable(characterization.limits)
    else:
        server = power7plus_testbed(args.seed)
        table, _ = characterizer.characterize_server(server)
    print(table.render())
    if args.out:
        path = save_limit_table(table, args.out)
        print(f"\nlimit table written to {path}")
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    limits = load_limit_table(args.limits)
    server = power7plus_testbed(args.seed)
    procedure = StressTestProcedure(RngStreams(args.seed))
    for chip in server.chips:
        if any(core.label not in limits for core in chip.cores):
            continue
        config = procedure.deploy_chip(chip, limits, rollback_steps=args.rollback)
        sim = ChipSim(chip)
        freqs = config.idle_frequencies_mhz(sim)
        print(f"{chip.chip_id}: deployed reductions "
              f"{list(config.reductions(chip))}")
        for label, freq in freqs.items():
            print(f"  {label}: {freq:.0f} MHz")
        print(f"  speed differential: {config.speed_differential_mhz(sim):.0f} MHz")
        if args.out:
            path = save_deployment(config, f"{args.out}.{chip.chip_id}.json")
            print(f"  deployment written to {path}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    critical = get_workload(args.critical)
    background = get_workload(args.background)
    if not is_critical(critical):
        print(f"error: {critical.name} is not a critical application",
              file=sys.stderr)
        return 2
    server = power7plus_testbed(args.seed)
    chip = server.chips[0]
    sim = ChipSim(chip)
    characterizer = Characterizer(RngStreams(args.seed), trials=args.trials)
    characterization = characterizer.characterize_chip(chip)
    manager = AtmManager(sim, LimitTable(characterization.limits))

    criticals = [critical]
    backgrounds = [background] * (chip.n_cores - 1)
    scenarios = [
        manager.run_static_margin(criticals, backgrounds),
        manager.run_default_atm(criticals, backgrounds),
        manager.run_unmanaged_finetuned(criticals, backgrounds),
        manager.run_managed_max(criticals, backgrounds),
        manager.run_managed_qos(criticals, backgrounds, target_speedup=args.qos),
    ]
    base = scenarios[0].critical_speedups[critical.name]
    print(f"{critical.name} co-located with {chip.n_cores - 1}x {background.name}")
    for result in scenarios:
        gain = 100.0 * (result.critical_speedups[critical.name] / base - 1.0)
        print(
            f"  {result.scenario:<45} gain {gain:5.1f}%  "
            f"chip {result.state.chip_power_w:6.1f} W  "
            f"bg: {result.background_setting}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_report

    ids = (
        tuple(part.strip() for part in args.experiments.split(",") if part.strip())
        if args.experiments
        else None
    )
    path = write_report(args.out, seed=args.seed, experiment_ids=ids)
    print(f"report written to {path}")
    return 0


def _cmd_list_workloads(_args: argparse.Namespace) -> int:
    header = (
        f"{'name':<18} {'suite':<11} {'activity':>8} {'stress':>7} "
        f"{'didt':>6} {'mem':>5}  role"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(ALL_WORKLOADS):
        workload = ALL_WORKLOADS[name]
        try:
            role = "critical" if is_critical(workload) else "background"
        except ReproError:
            role = "(test tool)"
        print(
            f"{workload.name:<18} {workload.suite.value:<11} "
            f"{workload.activity:>8.2f} {workload.stress:>7.2f} "
            f"{workload.didt_activity:>6.2f} {workload.mem_boundedness:>5.2f}  {role}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATM fine-tuning reproduction (HPCA 2019)",
    )
    parser.add_argument("--seed", type=int, default=2019, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("id", choices=[*REGISTRY, "all"])
    p_exp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for `all` (1 = serial; output is identical "
             "either way, modulo digest wall-clock)",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_bench = sub.add_parser(
        "bench", help="wall-clock benchmark of the experiment suite"
    )
    p_bench.add_argument("--out", default="BENCH_solver.json",
                         help="benchmark artifact path")
    p_bench.add_argument(
        "--experiments",
        help="comma-separated experiment ids (default: all)",
    )
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="passes over the suite; best wall is kept")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = per-experiment timing)")
    p_bench.add_argument(
        "--baseline-s", type=float, default=None, dest="baseline_s",
        help="reference suite wall-clock to compute the speedup against",
    )
    p_bench.add_argument(
        "--compare", default=None,
        help="committed bench artifact to diff against; exits non-zero "
             "past the regression threshold",
    )
    p_bench.add_argument(
        "--compare-threshold", type=float, default=2.0,
        dest="compare_threshold",
        help="fail when fresh/baseline total wall exceeds this ratio",
    )
    p_bench.add_argument(
        "--fleet-chips", type=int, default=0, dest="fleet_chips",
        help="also bench fleet solving over N sampled chips: population "
             "batch vs chip-at-a-time loop (0 skips)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_fleet = sub.add_parser(
        "fleet", help="fleet-scale population studies over sampled chips"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fchar = fleet_sub.add_parser(
        "characterize",
        help="run the Fig. 6 idle/uBench methodology over a sampled fleet "
             "in memory-bounded chunks",
    )
    p_fchar.add_argument("--chips", type=int, required=True,
                         help="fleet size (sampled chips)")
    p_fchar.add_argument("--chunk", type=int, default=64,
                         help="chips per memory-bounded processing chunk")
    p_fchar.add_argument("--trials", type=int, default=4)
    p_fchar.add_argument("--cores", type=int, default=8,
                         help="cores per sampled chip")
    p_fchar.add_argument(
        "--mode", choices=["static", "atm", "gated"], default="atm",
        help="margin mode of the baseline operating point",
    )
    p_fchar.add_argument(
        "--reduction", type=int, default=0,
        help="uniform CPM reduction of the baseline row (ATM mode only)",
    )
    p_fchar.add_argument(
        "--chip-loop", action="store_true", dest="chip_loop",
        help="solve chip-at-a-time instead of one fleet batch (A/B check)",
    )
    p_fchar.add_argument("--out", default=None,
                         help="write fleet.events.jsonl + fleet.manifest.json here")
    p_fchar.set_defaults(func=_cmd_fleet_characterize)

    p_char = sub.add_parser("characterize", help="run the Fig. 6 methodology")
    p_char.add_argument("--random", action="store_true",
                        help="characterize a sampled chip instead of the testbed")
    p_char.add_argument("--trials", type=int, default=10)
    p_char.add_argument("--out", help="write the limit table JSON here")
    p_char.set_defaults(func=_cmd_characterize)

    p_dep = sub.add_parser("deploy", help="stress-test deployment from saved limits")
    p_dep.add_argument("--limits", required=True, help="limit table JSON")
    p_dep.add_argument("--rollback", type=int, default=0)
    p_dep.add_argument("--out", help="write per-chip deployment JSON with this prefix")
    p_dep.set_defaults(func=_cmd_deploy)

    p_sched = sub.add_parser("schedule", help="evaluate the Fig. 14 scenarios")
    p_sched.add_argument("--critical", required=True)
    p_sched.add_argument("--background", required=True)
    p_sched.add_argument("--qos", type=float, default=1.10)
    p_sched.add_argument("--trials", type=int, default=8)
    p_sched.set_defaults(func=_cmd_schedule)

    p_trace = sub.add_parser(
        "trace", help="observed experiment run: event stream + manifest"
    )
    p_trace.add_argument("id", choices=list(REGISTRY))
    p_trace.add_argument("--out", default="runs", help="artifact directory")
    p_trace.add_argument(
        "--tail", type=int, default=5,
        help="trailing events to print (0 disables)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="observed experiment run: instrument summary table"
    )
    p_metrics.add_argument("id", choices=list(REGISTRY))
    p_metrics.add_argument("--out", default="runs", help="artifact directory")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_selfcheck = obs_sub.add_parser(
        "selfcheck", help="end-to-end smoke test of the obs pipeline"
    )
    p_selfcheck.set_defaults(func=_cmd_obs_selfcheck)

    p_list = sub.add_parser("list-workloads", help="show all modeled workloads")
    p_list.set_defaults(func=_cmd_list_workloads)

    p_lint = sub.add_parser(
        "lint", help="run the domain linter (RL001-RL008) over the tree"
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)

    p_report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    p_report.add_argument("--out", default="REPORT.md")
    p_report.add_argument(
        "--experiments",
        help="comma-separated experiment ids (default: all)",
    )
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
