"""Command-line interface: characterize, deploy, schedule, reproduce.

Mirrors the stages a vendor/operator would actually run:

``python -m repro experiment <id|all> [--jobs N]``
    Regenerate one (or every) paper table/figure and print the report;
    ``--jobs`` fans the suite across a process pool with identical output.
``python -m repro bench [--repeat N] [--baseline-s S]``
    Time the experiment suite and write the BENCH_solver.json artifact.
``python -m repro characterize [--seed N] [--random] [--out FILE]``
    Run the Fig. 6 methodology on the testbed (or a sampled chip) and
    optionally save the limit table as JSON.
``python -m repro deploy --limits FILE [--rollback N] [--out FILE]``
    Run the stress-test deployment against saved limits.
``python -m repro schedule --critical APP --background APP [--qos X]``
    Evaluate the Fig. 14 scenarios for one application pair.
``python -m repro trace <id>``
    Run one experiment under full observability and show its event trace,
    writing the JSONL stream plus run manifest.
``python -m repro metrics <id>``
    Same observed run, reported as the instrument summary table.
``python -m repro obs selfcheck``
    End-to-end smoke test of the observability pipeline.
``python -m repro obs diff <left> <right>``
    First-divergence diff of two observed runs (event streams and/or
    manifests); exits non-zero on any divergence or manifest drift.
``python -m repro obs flame <run> [--format chrome|speedscope]``
    Export a run's span tree as a Chrome-trace or speedscope profile.
``python -m repro obs history --store DIR [--format table|json]``
    Per-metric time series across registered runs with regression *and*
    improvement flags (signed delta + direction).
``python -m repro obs report --store DIR [--format markdown|json]``
    Deterministic digest: registry, history, spans, optional fleet health.
``python -m repro obs export [run] [--tsdb DIR] [--format openmetrics]``
    OpenMetrics text page over a run's metric summary and/or persisted
    tsdb series — byte-identical across same-seed runs.
``python -m repro obs alerts list|eval``
    Show a rule pack, or evaluate it over a recorded run's event stream
    (tolerant of truncated segments); ``eval`` exits non-zero on firings.
``python -m repro fleet characterize --chips N [--jobs J] [--solve-store DIR]``
    Chunked fleet characterization; ``--metrics-mode streaming`` and
    ``--segment-events`` keep memory bounded at any fleet size, and the
    outputs are byte-identical across chunk sizes and job counts.
    ``--solve-store`` persists characterizations, compiled tables, and
    converged states so a warm second run replays them from disk.
    ``--alerts``/``--slo`` evaluate rule packs over per-chip series
    captured into a tsdb (``--tsdb DIR`` persists the series files) and
    print an incident digest, exiting non-zero on any firing.
``python -m repro store stats|verify|prune DIR``
    Inspect, checksum-verify, or compact a persistent solve store.
``python -m repro fleet health --chips N``
    Outlier-chip triage over a sampled fleet (quantile fences).
``python -m repro list-workloads``
    Show every modeled workload and its observables.
``python -m repro lint [paths]``
    Run the domain linter (also available as ``python -m repro.lint``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from .atm.chip_sim import ChipSim
from .core.characterize import Characterizer
from .core.limits import LimitTable
from .core.manager import AtmManager
from .core.persistence import (
    load_limit_table,
    save_deployment,
    save_limit_table,
)
from .core.stress_test import StressTestProcedure
from .errors import ReproError
from .experiments import REGISTRY, run_experiment
from .experiments.common import run_observed
from .lint.cli import add_lint_arguments, run_lint
from .obs.metrics import render_summary_table
from .obs.selfcheck import run_selfcheck
from .obs.sinks import event_to_json_line, read_jsonl
from .rng import RngStreams
from .silicon import power7plus_testbed, sample_chip
from .workloads.classification import is_critical
from .workloads.registry import ALL_WORKLOADS, get_workload


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id == "all":
        # Local imports: the profiling tracer (the RL002-exempt wall-clock
        # path) only loads when the harness digest actually needs it.
        from .analysis.report import HEADLINE_METRICS
        from .obs.profiling import wall_clock_tick_source
        from .obs.trace import Tracer

        tracer = Tracer(wall_source=wall_clock_tick_source)
        results = {}
        pool = None
        futures = {}
        if args.jobs > 1:
            # Fan the suite out, then consume results in registry order so
            # stdout is laid out exactly as a serial run; only the digest's
            # wall-clock column can differ.
            from concurrent.futures import ProcessPoolExecutor

            from .experiments.runner import _run_one

            pool = ProcessPoolExecutor(max_workers=args.jobs)
            futures = {
                experiment_id: pool.submit(_run_one, experiment_id, args.seed)
                for experiment_id in REGISTRY
            }
        try:
            for experiment_id in REGISTRY:
                with tracer.span("experiment", id=experiment_id):
                    if pool is not None:
                        result = futures[experiment_id].result()
                    else:
                        result = run_experiment(experiment_id, seed=args.seed)
                results[experiment_id] = result
                print(result.render())
                print()
        finally:
            if pool is not None:
                pool.shutdown()
        print("digest (wall-clock per experiment):")
        for span, (experiment_id, result) in zip(
            tracer.finished, results.items()
        ):
            metric_name = HEADLINE_METRICS.get(experiment_id)
            if metric_name is not None and metric_name in result.metrics:
                headline = f"{metric_name}={result.metrics[metric_name]:.4g}"
            else:
                headline = "(no headline metric)"
            print(f"  {experiment_id:<16} {span.wall_s:7.2f}s  {headline}")
        return 0
    print(run_experiment(args.id, seed=args.seed).render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.bench import compare_to_baseline, run_bench

    ids = (
        [part.strip() for part in args.experiments.split(",") if part.strip()]
        if args.experiments
        else None
    )
    report = run_bench(
        ids,
        seed=args.seed,
        jobs=args.jobs,
        repeat=args.repeat,
        baseline_total_s=args.baseline_s,
        out_path=args.out,
        fleet_chips=args.fleet_chips,
        obs_chips=args.obs_chips,
        gauge_samples=args.gauge_samples,
        store_chips=args.store_chips,
        export_chips=args.export_chips,
    )
    print(report.render())
    print(f"bench report written to {args.out}")
    if args.compare:
        ok, text = compare_to_baseline(
            report,
            args.compare,
            threshold=args.compare_threshold,
            noise_floor_s=args.noise_floor_ms / 1000.0,
        )
        print(text)
        if not ok:
            return 1
    return 0


def _cmd_fleet_characterize(args: argparse.Namespace) -> int:
    from .atm.chip_sim import MarginMode
    from .core.fleet import characterize_fleet, run_fleet_observed
    from .fastpath.store import configure_store
    from .obs.stream.progress import ProgressReporter

    if args.solve_store:
        configure_store(args.solve_store)
    alert_rules, alert_slos = _load_alert_packs(args.alerts, args.slo)
    tsdb = None
    if alert_rules or alert_slos or args.tsdb:
        from .obs.tsdb import Tsdb

        tsdb = Tsdb("fleet", args.seed, window_ticks=args.alert_window)
    progress = None
    if args.progress:
        # Operator-facing only: stderr, never the event stream or manifest.
        progress = ProgressReporter(
            args.chips,
            write=sys.stderr.write,
            label="fleet characterize",
            unit="chips",
        )
    kwargs = dict(
        chunk_size=args.chunk,
        trials=args.trials,
        n_cores=args.cores,
        mode=MarginMode(args.mode),
        reduction_steps=args.reduction,
        population=not args.chip_loop,
        jobs=args.jobs,
        progress=progress,
        tsdb=tsdb,
    )
    try:
        if args.out:
            run = run_fleet_observed(
                args.chips,
                out_dir=args.out,
                seed=args.seed,
                metrics_mode=args.metrics_mode,
                segment_events=args.segment_events,
                **kwargs,
            )
            if progress is not None:
                progress.finish()
            print(run.report.render())
            print(
                f"\nevent stream: {run.events_path} ({run.event_count} events)"
            )
            print(f"manifest: {run.manifest_path}")
            _print_store_traffic()
            return _finish_fleet_alerts(
                tsdb, alert_rules, alert_slos, args.tsdb
            )
        report = characterize_fleet(args.chips, seed=args.seed, **kwargs)
    finally:
        if progress is not None:
            progress.finish()
    print(report.render())
    _print_store_traffic()
    return _finish_fleet_alerts(tsdb, alert_rules, alert_slos, args.tsdb)


def _load_alert_packs(rules_arg: str | None, slo_arg: str | None):
    """Resolve ``--alerts``/``--slo`` values to rule/SLO tuples."""
    rules = ()
    slos = ()
    if rules_arg:
        from .obs.alerts import default_rule_pack, load_rule_pack

        rules = (
            default_rule_pack()
            if rules_arg == "default"
            else load_rule_pack(rules_arg)
        )
    if slo_arg:
        from .obs.alerts import load_slo_pack

        slos = load_slo_pack(slo_arg)
    return rules, slos


def _finish_fleet_alerts(tsdb, rules, slos, store_dir: str | None) -> int:
    """Persist captured fleet series, then print the incident digest."""
    if tsdb is None:
        return 0
    if store_dir:
        from .obs.tsdb import TsdbStore

        paths = TsdbStore(store_dir).write(tsdb)
        print(f"tsdb: {len(paths)} series file(s) under {store_dir}")
    if not rules and not slos:
        return 0
    from .obs.alerts import evaluate_rules

    outcome = evaluate_rules(tsdb, rules, slos)
    print()
    print(outcome.render())
    return 1 if outcome.fired else 0


def _print_store_traffic() -> None:
    """One stdout line of persistent-store traffic, when one is live.

    Operator-facing only — the counters describe what was cached on this
    machine, so they never appear in the report or the run manifest.
    """
    from .fastpath.store import get_store

    store = get_store()
    if store is None:
        return
    stats = store.stats()
    print(
        f"solve store {store.root}: {stats['hits']} hits / "
        f"{stats['misses']} misses / {stats['writes']} writes "
        f"({stats['entries']} records"
        + (f", {stats['corrupt_entries']} corrupt)"
          if stats["corrupt_entries"] else ")")
    )


def _register_run(run, store_dir: str | None) -> None:
    """Register an observed run's artifacts into a run-store directory."""
    if not store_dir:
        return
    from .obs.analyze.store import RunStore

    record = RunStore(store_dir).put(run.manifest_path, run.events_path)
    print(f"registered as {record.run_id} in {store_dir}")


def _cmd_trace(args: argparse.Namespace) -> int:
    run = run_observed(args.id, seed=args.seed, out_dir=args.out)
    print(run.manifest.render())
    events = list(read_jsonl(run.events_path))
    counts: dict[str, int] = {}
    for event in events:
        name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
    print(f"event stream: {run.events_path} ({run.event_count} events)")
    for name in sorted(counts):
        print(f"  {name}: {counts[name]}")
    if args.tail > 0 and events:
        tail = events[-args.tail:]
        print(f"last {len(tail)} event(s):")
        for event in tail:
            print(f"  {event_to_json_line(event)}")
    print(f"manifest: {run.manifest_path}")
    _register_run(run, args.store)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    run = run_observed(args.id, seed=args.seed, out_dir=args.out)
    print(run.manifest.render())
    print()
    print(
        render_summary_table(
            run.manifest.metrics_summary, title=f"metrics: {args.id}"
        )
    )
    print(f"\nevent stream: {run.events_path}")
    print(f"manifest: {run.manifest_path}")
    _register_run(run, args.store)
    return 0


def _cmd_obs_selfcheck(_args: argparse.Namespace) -> int:
    ok, report = run_selfcheck()
    print(report)
    return 0 if ok else 1


def _resolve_run_artifacts(arg: str, run_id: str | None):
    """Resolve a diff operand to ``(events_path, manifest_path)``.

    Accepts a run directory (``runs/``, disambiguated by ``--id`` when it
    holds several runs), an ``.events.jsonl`` stream (single-file, or the
    logical path of a segmented stream whose ``.segments.json`` index sits
    beside it), or a ``.manifest.json`` manifest; siblings are picked up
    automatically.
    """
    from .errors import ConfigurationError
    from .obs.stream.rotate import segment_index_path

    def _stream_exists(events: Path) -> bool:
        return events.exists() or segment_index_path(events).exists()

    path = Path(arg)
    if path.is_dir():
        manifests = sorted(path.glob("*.manifest.json"))
        if run_id is not None:
            base = run_id
        elif len(manifests) == 1:
            base = manifests[0].name[: -len(".manifest.json")]
        else:
            raise ConfigurationError(
                f"{path} holds {len(manifests)} run(s); pass --id to pick one"
            )
        events = path / f"{base}.events.jsonl"
        manifest = path / f"{base}.manifest.json"
        if not _stream_exists(events) and not manifest.exists():
            raise ConfigurationError(f"no run artifacts for {base!r} in {path}")
        return (events if _stream_exists(events) else None,
                manifest if manifest.exists() else None)
    if not path.exists() and not (
        path.name.endswith(".events.jsonl") and _stream_exists(path)
    ):
        raise ConfigurationError(f"no run artifact at {path}")
    name = path.name
    if name.endswith(".events.jsonl"):
        sibling = path.with_name(
            name[: -len(".events.jsonl")] + ".manifest.json"
        )
        return path, (sibling if sibling.exists() else None)
    if name.endswith(".jsonl"):
        return path, None
    if name.endswith(".manifest.json"):
        sibling = path.with_name(
            name[: -len(".manifest.json")] + ".events.jsonl"
        )
        return (sibling if sibling.exists() else None), path
    if name.endswith(".json"):
        return None, path
    raise ConfigurationError(
        f"{path} is neither a run directory, a .jsonl stream, nor a manifest"
    )


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .obs.analyze.diff import diff_manifests, diff_streams

    left_events, left_manifest = _resolve_run_artifacts(args.left, args.id)
    right_events, right_manifest = _resolve_run_artifacts(args.right, args.id)
    compared = False
    diverged = False
    if left_manifest is not None and right_manifest is not None:
        manifest_diff = diff_manifests(left_manifest, right_manifest)
        print(manifest_diff.render())
        compared = True
        diverged = diverged or not manifest_diff.identical
    if left_events is not None and right_events is not None:
        stream_diff = diff_streams(left_events, right_events, context=args.context)
        print(stream_diff.render())
        compared = True
        diverged = diverged or not stream_diff.identical
    if not compared:
        raise ConfigurationError(
            "the two operands share no comparable artifacts "
            "(need two event streams and/or two manifests)"
        )
    return 1 if diverged else 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .obs.sinks import read_jsonl_documents
    from .obs.stream.flame import render_flame

    events_path, _ = _resolve_run_artifacts(args.run, args.id)
    if events_path is None:
        raise ConfigurationError(
            f"{args.run} has no event stream to export a flame graph from"
        )
    documents, skipped = read_jsonl_documents(events_path, tolerant=True)
    if skipped:
        print(
            f"warning: {skipped} truncated line(s) skipped in {events_path}",
            file=sys.stderr,
        )
    name = events_path.name
    if name.endswith(".events.jsonl"):
        name = name[: -len(".events.jsonl")]
    text = render_flame(documents, args.format, name=name)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"{args.format} profile written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.analyze.history import (
        bench_wall_series,
        build_history,
        flag_improvements,
        flag_regressions,
        history_to_dict,
        render_history,
    )
    from .obs.analyze.store import RunStore

    store = RunStore(args.store)
    metrics = (
        [part.strip() for part in args.metrics.split(",") if part.strip()]
        if args.metrics
        else None
    )
    series = list(
        build_history(store, experiment_id=args.experiment, metrics=metrics)
    )
    series.extend(bench_wall_series(args.bench or ()))
    flags = flag_regressions(
        series,
        threshold=args.threshold,
        wall_min_delta=args.noise_floor_ms / 1000.0,
    )
    improvements = flag_improvements(
        series,
        threshold=args.threshold,
        wall_min_delta=args.noise_floor_ms / 1000.0,
    )
    if args.format == "json":
        document = history_to_dict(
            series, flags, improvements, threshold=args.threshold
        )
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            render_history(
                series,
                flags,
                improvements=improvements,
                title=f"metrics history: {len(store.run_ids())} run(s)",
                threshold=args.threshold,
            )
        )
    return 1 if flags else 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .obs.manifest import load_manifest
    from .obs.tsdb import TsdbStore, render_openmetrics

    summary = None
    labels = None
    tsdb = None
    if args.run:
        _, manifest_path = _resolve_run_artifacts(args.run, args.id)
        if manifest_path is None:
            raise ConfigurationError(
                f"{args.run} has no manifest to export metrics from"
            )
        manifest = load_manifest(manifest_path)
        summary = manifest.metrics_summary
        labels = {
            "experiment": manifest.experiment_id,
            "seed": str(manifest.seed),
        }
    if args.tsdb:
        store = TsdbStore(args.tsdb)
        runs = store.runs()
        if args.experiment is not None:
            runs = [run for run in runs if run[0] == args.experiment]
        if len(runs) > 1:
            seeded = [run for run in runs if run[1] == args.seed]
            if len(seeded) == 1:
                runs = seeded
        if len(runs) != 1:
            names = ", ".join(f"{exp}@s{seed}" for exp, seed in runs)
            raise ConfigurationError(
                f"{args.tsdb} holds {len(runs)} matching run(s)"
                + (f" ({names})" if names else "")
                + "; pass --experiment/--seed to pick exactly one"
            )
        experiment, seed = runs[0]
        tsdb = store.load_run(experiment, seed)
        if labels is None:
            labels = {"experiment": experiment, "seed": str(seed)}
    if summary is None and tsdb is None:
        raise ConfigurationError(
            "nothing to export: give a run operand and/or --tsdb DIR"
        )
    text = render_openmetrics(summary=summary, tsdb=tsdb, labels=labels)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"openmetrics page written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_obs_alerts_list(args: argparse.Namespace) -> int:
    from .analysis.rendering import ascii_table
    from .errors import ConfigurationError
    from .obs.alerts import SLO_KIND

    rules, slos = _load_alert_packs(args.rules, args.slo)
    if not rules and not slos:
        raise ConfigurationError("nothing to list: pass --rules and/or --slo")
    rows = [
        (rule.name, rule.kind, rule.metric, rule.severity, rule.describe())
        for rule in rules
    ] + [
        (slo.name, SLO_KIND, slo.metric, slo.severity, slo.describe())
        for slo in slos
    ]
    print(
        ascii_table(
            ("name", "kind", "metric", "severity", "predicate"),
            rows,
            title=f"{len(rules)} rule(s), {len(slos)} slo(s)",
        )
    )
    return 0


def _cmd_obs_alerts_eval(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .obs.alerts import evaluate_rules
    from .obs.manifest import load_manifest
    from .obs.tsdb import Tsdb, TsdbStore, capture_stream, capture_summary

    rules, slos = _load_alert_packs(args.rules, args.slo)
    if not rules and not slos:
        raise ConfigurationError(
            "nothing to evaluate: pass --rules and/or --slo"
        )
    events_path, manifest_path = _resolve_run_artifacts(args.run, args.id)
    manifest = None
    experiment = None
    seed = args.seed
    if manifest_path is not None:
        manifest = load_manifest(manifest_path)
        experiment = manifest.experiment_id
        seed = manifest.seed
    elif events_path is not None:
        experiment = events_path.name
        if experiment.endswith(".events.jsonl"):
            experiment = experiment[: -len(".events.jsonl")]
    if experiment is None:
        raise ConfigurationError(f"{args.run} has no run artifacts to evaluate")
    tsdb = Tsdb(experiment, seed, window_ticks=args.window)
    skipped = 0
    if events_path is not None:
        _, skipped = capture_stream(tsdb, events_path)
    if manifest is not None:
        capture_summary(tsdb, manifest.metrics_summary)
    outcome = evaluate_rules(tsdb, rules, slos, skipped_lines=skipped)
    if args.tsdb:
        TsdbStore(args.tsdb).write(tsdb)
    if args.out:
        outcome.write_events(args.out)
    if args.json:
        print(outcome.to_json(), end="")
    else:
        print(outcome.render())
    return 1 if outcome.fired else 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs.analyze.report import build_report, render_json, render_markdown
    from .obs.analyze.store import RunStore

    fleet_health = None
    if args.fleet_chips > 0:
        from .obs.analyze.fleet_health import assess_fleet

        fleet_health = assess_fleet(
            args.fleet_chips, seed=args.seed, trials=args.trials
        )
    report = build_report(
        RunStore(args.store),
        threshold=args.threshold,
        bench_paths=args.bench or (),
        fleet_health=fleet_health,
    )
    text = render_json(report) if args.format == "json" else render_markdown(report)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_fleet_health(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.analyze.fleet_health import assess_fleet

    report = assess_fleet(
        args.chips,
        seed=args.seed,
        trials=args.trials,
        n_cores=args.cores,
        fence_k=args.fence_k,
    )
    if args.json:
        print(_json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.render())
    return 0


def _check_store_dir(path: str) -> None:
    from .errors import ConfigurationError

    if not Path(path).is_dir():
        raise ConfigurationError(f"no solve store directory at {path}")


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from .fastpath.store import SolveStore

    _check_store_dir(args.dir)
    store = SolveStore(args.dir, writable=False)
    try:
        report = store.verify()
    finally:
        store.close()
    print(f"solve store {report['path']} "
          f"(format v{report['format_version']}, "
          f"{'usable' if report['usable'] else 'UNUSABLE'})")
    print(f"  records: {report['entries']}")
    for kind, count in sorted(report["entries_by_kind"].items()):
        print(f"    {kind:<9} {count}")
    print(f"  data bytes: {report['data_bytes']}")
    print(f"  reclaimable: {report['unreferenced_bytes']} "
          f"(superseded / torn records; `repro store prune` compacts)")
    if report["corrupt"]:
        print(f"  corrupt: {report['corrupt']} record(s) dropped on read")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from .fastpath.store import SolveStore

    _check_store_dir(args.dir)
    store = SolveStore(args.dir, writable=False)
    try:
        report = store.verify()
    finally:
        store.close()
    ok = report["usable"] and report["corrupt"] == 0
    status = "ok" if ok else "CORRUPT"
    print(
        f"solve store {report['path']}: {status} — "
        f"{report['entries']} record(s) verified, "
        f"{report['corrupt']} corrupt"
    )
    if not report["usable"]:
        print("  index/data header mismatch: store is ignored by readers "
              "(runs recompute; prune or delete the directory)")
    return 0 if ok else 1


def _cmd_store_prune(args: argparse.Namespace) -> int:
    from .fastpath.store import SolveStore

    _check_store_dir(args.dir)
    store = SolveStore(args.dir)
    try:
        before = store.verify()
        report = store.prune(max_bytes=args.max_bytes)
    finally:
        store.close()
    dropped = before["entries"] - report["kept"]
    print(
        f"solve store {report['path']}: kept {report['kept']} record(s), "
        f"dropped {dropped}, data now {report['data_bytes']} bytes"
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    characterizer = Characterizer(RngStreams(args.seed), trials=args.trials)
    if args.random:
        chip = sample_chip(args.seed)
        characterization = characterizer.characterize_chip(chip)
        table = LimitTable(characterization.limits)
    else:
        server = power7plus_testbed(args.seed)
        table, _ = characterizer.characterize_server(server)
    print(table.render())
    if args.out:
        path = save_limit_table(table, args.out)
        print(f"\nlimit table written to {path}")
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    limits = load_limit_table(args.limits)
    server = power7plus_testbed(args.seed)
    procedure = StressTestProcedure(RngStreams(args.seed))
    for chip in server.chips:
        if any(core.label not in limits for core in chip.cores):
            continue
        config = procedure.deploy_chip(chip, limits, rollback_steps=args.rollback)
        sim = ChipSim(chip)
        freqs = config.idle_frequencies_mhz(sim)
        print(f"{chip.chip_id}: deployed reductions "
              f"{list(config.reductions(chip))}")
        for label, freq in freqs.items():
            print(f"  {label}: {freq:.0f} MHz")
        print(f"  speed differential: {config.speed_differential_mhz(sim):.0f} MHz")
        if args.out:
            path = save_deployment(config, f"{args.out}.{chip.chip_id}.json")
            print(f"  deployment written to {path}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    critical = get_workload(args.critical)
    background = get_workload(args.background)
    if not is_critical(critical):
        print(f"error: {critical.name} is not a critical application",
              file=sys.stderr)
        return 2
    server = power7plus_testbed(args.seed)
    chip = server.chips[0]
    sim = ChipSim(chip)
    characterizer = Characterizer(RngStreams(args.seed), trials=args.trials)
    characterization = characterizer.characterize_chip(chip)
    manager = AtmManager(sim, LimitTable(characterization.limits))

    criticals = [critical]
    backgrounds = [background] * (chip.n_cores - 1)
    scenarios = [
        manager.run_static_margin(criticals, backgrounds),
        manager.run_default_atm(criticals, backgrounds),
        manager.run_unmanaged_finetuned(criticals, backgrounds),
        manager.run_managed_max(criticals, backgrounds),
        manager.run_managed_qos(criticals, backgrounds, target_speedup=args.qos),
    ]
    base = scenarios[0].critical_speedups[critical.name]
    print(f"{critical.name} co-located with {chip.n_cores - 1}x {background.name}")
    for result in scenarios:
        gain = 100.0 * (result.critical_speedups[critical.name] / base - 1.0)
        print(
            f"  {result.scenario:<45} gain {gain:5.1f}%  "
            f"chip {result.state.chip_power_w:6.1f} W  "
            f"bg: {result.background_setting}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_report

    ids = (
        tuple(part.strip() for part in args.experiments.split(",") if part.strip())
        if args.experiments
        else None
    )
    path = write_report(args.out, seed=args.seed, experiment_ids=ids)
    print(f"report written to {path}")
    return 0


def _cmd_list_workloads(_args: argparse.Namespace) -> int:
    header = (
        f"{'name':<18} {'suite':<11} {'activity':>8} {'stress':>7} "
        f"{'didt':>6} {'mem':>5}  role"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(ALL_WORKLOADS):
        workload = ALL_WORKLOADS[name]
        try:
            role = "critical" if is_critical(workload) else "background"
        except ReproError:
            role = "(test tool)"
        print(
            f"{workload.name:<18} {workload.suite.value:<11} "
            f"{workload.activity:>8.2f} {workload.stress:>7.2f} "
            f"{workload.didt_activity:>6.2f} {workload.mem_boundedness:>5.2f}  {role}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATM fine-tuning reproduction (HPCA 2019)",
    )
    parser.add_argument("--seed", type=int, default=2019, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("id", choices=[*REGISTRY, "all"])
    p_exp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for `all` (1 = serial; output is identical "
             "either way, modulo digest wall-clock)",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_bench = sub.add_parser(
        "bench", help="wall-clock benchmark of the experiment suite"
    )
    p_bench.add_argument("--out", default="BENCH_solver.json",
                         help="benchmark artifact path")
    p_bench.add_argument(
        "--experiments",
        help="comma-separated experiment ids (default: all)",
    )
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="passes over the suite; best wall is kept")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = per-experiment timing)")
    p_bench.add_argument(
        "--baseline-s", type=float, default=None, dest="baseline_s",
        help="reference suite wall-clock to compute the speedup against",
    )
    p_bench.add_argument(
        "--compare", default=None,
        help="committed bench artifact to diff against; exits non-zero "
             "past the regression threshold",
    )
    p_bench.add_argument(
        "--compare-threshold", type=float, default=2.0,
        dest="compare_threshold",
        help="fail when fresh/baseline total wall exceeds this ratio",
    )
    p_bench.add_argument(
        "--noise-floor-ms", type=float, default=50.0, dest="noise_floor_ms",
        help="absolute wall-clock slack for --compare: deltas below this "
             "are scheduling noise, never a regression",
    )
    p_bench.add_argument(
        "--store-chips", type=int, default=0, dest="store_chips",
        help="also bench the persistent solve store: characterize N chips "
             "cold vs warm against a temporary store (0 skips)",
    )
    p_bench.add_argument(
        "--fleet-chips", type=int, default=0, dest="fleet_chips",
        help="also bench fleet solving over N sampled chips: population "
             "batch vs chip-at-a-time loop (0 skips)",
    )
    p_bench.add_argument(
        "--obs-chips", type=int, default=0, dest="obs_chips",
        help="also bench obs overhead: characterize N chips dark vs "
             "observed with streaming metrics (0 skips)",
    )
    p_bench.add_argument(
        "--gauge-samples", type=int, default=0, dest="gauge_samples",
        help="also bench streaming-gauge memory vs the exact recorder "
             "at N samples (0 skips)",
    )
    p_bench.add_argument(
        "--export-chips", type=int, default=0, dest="export_chips",
        help="also bench the alerting layer: characterize N chips plain "
             "vs tsdb-captured + default-pack evaluation, plus the "
             "OpenMetrics export (0 skips)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_fleet = sub.add_parser(
        "fleet", help="fleet-scale population studies over sampled chips"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fchar = fleet_sub.add_parser(
        "characterize",
        help="run the Fig. 6 idle/uBench methodology over a sampled fleet "
             "in memory-bounded chunks",
    )
    p_fchar.add_argument("--chips", type=int, required=True,
                         help="fleet size (sampled chips)")
    p_fchar.add_argument("--chunk", type=int, default=64,
                         help="chips per memory-bounded processing chunk")
    p_fchar.add_argument("--trials", type=int, default=4)
    p_fchar.add_argument("--cores", type=int, default=8,
                         help="cores per sampled chip")
    p_fchar.add_argument(
        "--mode", choices=["static", "atm", "gated"], default="atm",
        help="margin mode of the baseline operating point",
    )
    p_fchar.add_argument(
        "--reduction", type=int, default=0,
        help="uniform CPM reduction of the baseline row (ATM mode only)",
    )
    p_fchar.add_argument(
        "--chip-loop", action="store_true", dest="chip_loop",
        help="solve chip-at-a-time instead of one fleet batch (A/B check)",
    )
    p_fchar.add_argument("--out", default=None,
                         help="write fleet.events.jsonl + fleet.manifest.json here")
    p_fchar.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the chunk fan-out (1 = serial; the "
             "report and metric summaries are byte-identical either way)",
    )
    p_fchar.add_argument(
        "--metrics-mode", choices=["exact", "streaming"], default="exact",
        dest="metrics_mode",
        help="gauge mode for the observed run (--out): 'streaming' keeps "
             "O(sketch) memory per gauge and is required for --jobs > 1",
    )
    p_fchar.add_argument(
        "--segment-events", type=int, default=0, dest="segment_events",
        help="rotate the observed event stream every N events "
             "(0 = single file; the manifest digest is identical either way)",
    )
    p_fchar.add_argument(
        "--progress", action="store_true",
        help="live chips/s + ETA on stderr (wall clock stays out of "
             "artifacts)",
    )
    p_fchar.add_argument(
        "--solve-store", default=None, dest="solve_store",
        help="persist characterizations, compiled tables, and converged "
             "states in this directory; a warm second run replays them "
             "from disk with byte-identical outputs",
    )
    p_fchar.add_argument(
        "--alerts", default=None,
        help="alert-rule pack JSON to evaluate over the captured per-chip "
             "series, or 'default' for the shipped pack; exits non-zero "
             "on any firing",
    )
    p_fchar.add_argument(
        "--slo", default=None,
        help="SLO pack JSON evaluated alongside --alerts (burn-rate "
             "targets over the same tick windows)",
    )
    p_fchar.add_argument(
        "--tsdb", default=None,
        help="persist the captured per-chip series into this tsdb store "
             "directory (merge-on-write; byte-identical across --jobs)",
    )
    p_fchar.add_argument(
        "--alert-window", type=float, default=64.0, dest="alert_window",
        help="tick-window width for the captured series (chips per "
             "window; alert rules reduce over these windows)",
    )
    p_fchar.set_defaults(func=_cmd_fleet_characterize)

    p_fhealth = fleet_sub.add_parser(
        "health",
        help="quantile-fence outlier triage over a characterized fleet",
    )
    p_fhealth.add_argument("--chips", type=int, required=True,
                           help="fleet size (sampled chips)")
    p_fhealth.add_argument("--trials", type=int, default=4)
    p_fhealth.add_argument("--cores", type=int, default=8,
                           help="cores per sampled chip")
    p_fhealth.add_argument(
        "--fence-k", type=float, default=1.5, dest="fence_k",
        help="fence multiplier over the quantile spreads",
    )
    p_fhealth.add_argument(
        "--json", action="store_true",
        help="print the canonical JSON document instead of the table",
    )
    p_fhealth.set_defaults(func=_cmd_fleet_health)

    p_store = sub.add_parser(
        "store", help="inspect / maintain a persistent solve store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sstats = store_sub.add_parser(
        "stats", help="record counts, bytes, and reclaimable space"
    )
    p_sstats.add_argument("dir", help="solve-store directory")
    p_sstats.set_defaults(func=_cmd_store_stats)
    p_sverify = store_sub.add_parser(
        "verify",
        help="re-check every record's bounds and checksum; exits non-zero "
             "on any corruption",
    )
    p_sverify.add_argument("dir", help="solve-store directory")
    p_sverify.set_defaults(func=_cmd_store_verify)
    p_sprune = store_sub.add_parser(
        "prune",
        help="compact the store: drop corrupt, superseded, and torn "
             "records (oldest-first down to --max-bytes)",
    )
    p_sprune.add_argument("dir", help="solve-store directory")
    p_sprune.add_argument(
        "--max-bytes", type=int, default=None, dest="max_bytes",
        help="data-file budget; oldest records are dropped until it fits",
    )
    p_sprune.set_defaults(func=_cmd_store_prune)

    p_char = sub.add_parser("characterize", help="run the Fig. 6 methodology")
    p_char.add_argument("--random", action="store_true",
                        help="characterize a sampled chip instead of the testbed")
    p_char.add_argument("--trials", type=int, default=10)
    p_char.add_argument("--out", help="write the limit table JSON here")
    p_char.set_defaults(func=_cmd_characterize)

    p_dep = sub.add_parser("deploy", help="stress-test deployment from saved limits")
    p_dep.add_argument("--limits", required=True, help="limit table JSON")
    p_dep.add_argument("--rollback", type=int, default=0)
    p_dep.add_argument("--out", help="write per-chip deployment JSON with this prefix")
    p_dep.set_defaults(func=_cmd_deploy)

    p_sched = sub.add_parser("schedule", help="evaluate the Fig. 14 scenarios")
    p_sched.add_argument("--critical", required=True)
    p_sched.add_argument("--background", required=True)
    p_sched.add_argument("--qos", type=float, default=1.10)
    p_sched.add_argument("--trials", type=int, default=8)
    p_sched.set_defaults(func=_cmd_schedule)

    p_trace = sub.add_parser(
        "trace", help="observed experiment run: event stream + manifest"
    )
    p_trace.add_argument("id", choices=list(REGISTRY))
    p_trace.add_argument("--out", default="runs", help="artifact directory")
    p_trace.add_argument(
        "--tail", type=int, default=5,
        help="trailing events to print (0 disables)",
    )
    p_trace.add_argument(
        "--store", default=None,
        help="register the run into this run-registry directory",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="observed experiment run: instrument summary table"
    )
    p_metrics.add_argument("id", choices=list(REGISTRY))
    p_metrics.add_argument("--out", default="runs", help="artifact directory")
    p_metrics.add_argument(
        "--store", default=None,
        help="register the run into this run-registry directory",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_selfcheck = obs_sub.add_parser(
        "selfcheck", help="end-to-end smoke test of the obs pipeline"
    )
    p_selfcheck.set_defaults(func=_cmd_obs_selfcheck)

    p_diff = obs_sub.add_parser(
        "diff",
        help="first-divergence diff of two runs (streams and/or manifests)",
    )
    p_diff.add_argument("left", help="run dir, .events.jsonl, or manifest")
    p_diff.add_argument("right", help="run dir, .events.jsonl, or manifest")
    p_diff.add_argument(
        "--id", default=None,
        help="run base name when an operand directory holds several runs",
    )
    p_diff.add_argument(
        "--context", type=int, default=3,
        help="shared context lines shown before the divergence",
    )
    p_diff.set_defaults(func=_cmd_obs_diff)

    p_flame = obs_sub.add_parser(
        "flame",
        help="export a run's span tree as a Chrome-trace or speedscope "
             "profile",
    )
    p_flame.add_argument("run", help="run dir, .events.jsonl, or manifest")
    p_flame.add_argument(
        "--id", default=None,
        help="run base name when the operand directory holds several runs",
    )
    p_flame.add_argument(
        "--format", choices=["chrome", "speedscope"], default="chrome",
        help="profile format (load in chrome://tracing or speedscope.app)",
    )
    p_flame.add_argument("--out", default=None, help="write the profile here")
    p_flame.set_defaults(func=_cmd_obs_flame)

    p_history = obs_sub.add_parser(
        "history", help="per-metric series + regression flags over a registry"
    )
    p_history.add_argument(
        "--store", required=True, help="run-registry directory"
    )
    p_history.add_argument(
        "--experiment", default=None,
        help="restrict to runs of this experiment id",
    )
    p_history.add_argument(
        "--metrics", default=None,
        help="comma-separated metric names to keep (default: all)",
    )
    p_history.add_argument(
        "--threshold", type=float, default=2.0,
        help="regression ratio gate (latest/first)",
    )
    p_history.add_argument(
        "--bench", action="append", default=None,
        help="bench_solver JSON artifact to fold in (repeatable)",
    )
    p_history.add_argument(
        "--noise-floor-ms", type=float, default=50.0, dest="noise_floor_ms",
        help="absolute slack for wall-clock series: deltas below this are "
             "scheduling noise, never a regression",
    )
    p_history.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="table (signed delta + direction columns) or the canonical "
             "JSON document",
    )
    p_history.set_defaults(func=_cmd_obs_history)

    p_export = obs_sub.add_parser(
        "export",
        help="OpenMetrics text page over a run's metrics and/or persisted "
             "tsdb series",
    )
    p_export.add_argument(
        "run", nargs="?", default=None,
        help="run dir or manifest whose metric summary to export",
    )
    p_export.add_argument(
        "--id", default=None,
        help="run base name when the operand directory holds several runs",
    )
    p_export.add_argument(
        "--tsdb", default=None,
        help="tsdb store directory whose persisted series to export",
    )
    p_export.add_argument(
        "--experiment", default=None,
        help="tsdb run to export when the store holds several",
    )
    p_export.add_argument(
        "--format", choices=["openmetrics"], default="openmetrics",
        help="exposition format",
    )
    p_export.add_argument("--out", default=None, help="write the page here")
    p_export.set_defaults(func=_cmd_obs_export)

    p_alerts = obs_sub.add_parser(
        "alerts", help="deterministic alert rules over recorded telemetry"
    )
    alerts_sub = p_alerts.add_subparsers(dest="alerts_command", required=True)
    p_alist = alerts_sub.add_parser(
        "list", help="show a rule pack's predicates"
    )
    p_alist.add_argument(
        "--rules", default="default",
        help="rule pack JSON, or 'default' for the shipped pack",
    )
    p_alist.add_argument("--slo", default=None, help="SLO pack JSON")
    p_alist.set_defaults(func=_cmd_obs_alerts_list)
    p_aeval = alerts_sub.add_parser(
        "eval",
        help="evaluate rules over a recorded run (event stream + "
             "manifest); exits non-zero on any firing",
    )
    p_aeval.add_argument(
        "run", help="run dir, .events.jsonl (plain or segmented), or manifest"
    )
    p_aeval.add_argument(
        "--id", default=None,
        help="run base name when the operand directory holds several runs",
    )
    p_aeval.add_argument(
        "--rules", default="default",
        help="rule pack JSON, or 'default' for the shipped pack",
    )
    p_aeval.add_argument("--slo", default=None, help="SLO pack JSON")
    p_aeval.add_argument(
        "--window", type=float, default=64.0,
        help="tick-window width for the ingested series",
    )
    p_aeval.add_argument(
        "--tsdb", default=None,
        help="also persist the ingested series into this tsdb store",
    )
    p_aeval.add_argument(
        "--out", default=None,
        help="write the alert/incident events as a JSONL stream here",
    )
    p_aeval.add_argument(
        "--json", action="store_true",
        help="print the canonical outcome document instead of the digest",
    )
    p_aeval.set_defaults(func=_cmd_obs_alerts_eval)

    p_oreport = obs_sub.add_parser(
        "report", help="rendered regression report over a run registry"
    )
    p_oreport.add_argument(
        "--store", required=True, help="run-registry directory"
    )
    p_oreport.add_argument(
        "--format", choices=["markdown", "json"], default="markdown"
    )
    p_oreport.add_argument("--out", default=None, help="write the report here")
    p_oreport.add_argument(
        "--threshold", type=float, default=2.0,
        help="regression ratio gate (latest/first)",
    )
    p_oreport.add_argument(
        "--bench", action="append", default=None,
        help="bench_solver JSON artifact to fold in (repeatable)",
    )
    p_oreport.add_argument(
        "--fleet-chips", type=int, default=0, dest="fleet_chips",
        help="include a fleet-health section over this many sampled chips",
    )
    p_oreport.add_argument(
        "--trials", type=int, default=4,
        help="characterization trials for the fleet-health section",
    )
    p_oreport.set_defaults(func=_cmd_obs_report)

    p_list = sub.add_parser("list-workloads", help="show all modeled workloads")
    p_list.set_defaults(func=_cmd_list_workloads)

    p_lint = sub.add_parser(
        "lint",
        help="run the domain linter (RL001-RL008 and RL013; --project adds "
        "the interprocedural RL009-RL012) over the tree",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=run_lint)

    p_report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    p_report.add_argument("--out", default="REPORT.md")
    p_report.add_argument(
        "--experiments",
        help="comma-separated experiment ids (default: all)",
    )
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
