"""SPEC CPU 2017 workload models (paper Sec. VI).

Each entry models one single-threaded SPEC CPU 2017 benchmark through the
four ATM observables.  The stress intensities encode the paper's central
empirical finding (Figs. 9-10): the amount of CPM rollback an application
demands is *not* predictable from obvious instruction-mix statistics —
``gcc`` touches a rich instruction set yet stresses ATM very little, while
``x264``'s periodic pipeline flushes make it the single most stressful
workload profiled.  ``x264`` sits at stress 1.0 and therefore defines the
thread-worst row of Table I.

Memory-boundedness values follow each benchmark's well-known cache
behaviour (``mcf`` and ``lbm`` heavily memory-bound, ``exchange2`` almost
purely core-bound) and set the slopes of Fig. 12b.
"""

from __future__ import annotations

from .base import Suite, Workload


def _spec(
    name: str,
    activity: float,
    stress: float,
    didt: float,
    mem: float,
) -> Workload:
    return Workload(
        name=name,
        suite=Suite.SPEC,
        activity=activity,
        stress=stress,
        didt_activity=didt,
        mem_boundedness=mem,
    )


GCC = _spec("gcc", 0.75, 0.30, 0.50, 0.25)
MCF = _spec("mcf", 0.65, 0.45, 0.40, 0.60)
X264 = _spec("x264", 0.95, 1.00, 1.60, 0.08)
LEELA = _spec("leela", 0.80, 0.28, 0.35, 0.10)
EXCHANGE2 = _spec("exchange2", 0.85, 0.35, 0.40, 0.02)
DEEPSJENG = _spec("deepsjeng", 0.85, 0.50, 0.60, 0.12)
XZ = _spec("xz", 0.70, 0.55, 0.70, 0.40)
PERLBENCH = _spec("perlbench", 0.80, 0.58, 0.80, 0.18)
OMNETPP = _spec("omnetpp", 0.70, 0.48, 0.60, 0.50)
XALANCBMK = _spec("xalancbmk", 0.75, 0.52, 0.65, 0.35)
BWAVES = _spec("bwaves", 0.90, 0.65, 0.90, 0.45)
LBM = _spec("lbm", 0.95, 0.70, 0.80, 0.65)
CACTUBSSN = _spec("cactuBSSN", 0.92, 0.72, 0.90, 0.40)
IMAGICK = _spec("imagick", 1.00, 0.60, 0.70, 0.05)
NAB = _spec("nab", 0.90, 0.55, 0.60, 0.15)
FOTONIK3D = _spec("fotonik3d", 0.90, 0.68, 0.80, 0.55)
WRF = _spec("wrf", 0.88, 0.66, 0.85, 0.35)
ROMS = _spec("roms", 0.87, 0.62, 0.80, 0.45)

#: All modeled SPEC CPU 2017 benchmarks.
SPEC_SUITE = (
    GCC,
    MCF,
    X264,
    LEELA,
    EXCHANGE2,
    DEEPSJENG,
    XZ,
    PERLBENCH,
    OMNETPP,
    XALANCBMK,
    BWAVES,
    LBM,
    CACTUBSSN,
    IMAGICK,
    NAB,
    FOTONIK3D,
    WRF,
    ROMS,
)
