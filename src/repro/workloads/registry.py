"""Name-based lookup across every modeled workload."""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import IDLE, Suite, Workload
from .dnn import DNN_SUITE
from .parsec import PARSEC_SUITE
from .spec import SPEC_SUITE
from .stressmark import BEYOND_WORST_VIRUS, STRESS_BATTERY
from .ubench import DAXPY_SMT4, UBENCH_SUITE

#: Every workload the library models, keyed by name.
ALL_WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        IDLE,
        *UBENCH_SUITE,
        DAXPY_SMT4,
        *SPEC_SUITE,
        *PARSEC_SUITE,
        *DNN_SUITE,
        *STRESS_BATTERY,
        BEYOND_WORST_VIRUS,
    )
}


def get_workload(name: str) -> Workload:
    """Look a workload up by name; raises for unknown names."""
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: {known}"
        ) from None


def by_suite(suite: Suite) -> tuple[Workload, ...]:
    """All workloads belonging to ``suite``, sorted by name."""
    return tuple(
        sorted(
            (w for w in ALL_WORKLOADS.values() if w.suite is suite),
            key=lambda w: w.name,
        )
    )


def realistic_applications() -> tuple[Workload, ...]:
    """The SPEC + PARSEC + DNN set used for realistic characterization.

    This is the profiling population behind Fig. 10 and the thread-normal /
    thread-worst rows of Table I.
    """
    return by_suite(Suite.SPEC) + by_suite(Suite.PARSEC) + by_suite(Suite.DNN)


def medium_and_light_applications(threshold: float = 0.6) -> tuple[Workload, ...]:
    """Applications at or below the thread-normal stress threshold.

    The thread-normal configuration of Table I is defined as the most
    aggressive setting that supports this population.
    """
    return tuple(
        w for w in realistic_applications() if w.stress <= threshold
    )
