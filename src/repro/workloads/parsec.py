"""PARSEC 3.0 workload models (paper Secs. VI-VII).

The PARSEC applications populate both sides of the paper's management
study: ``ferret`` and ``fluidanimate`` are latency-critical foreground
jobs; ``lu_cb``, ``raytrace``, ``swaptions``, ``streamcluster``,
``blackscholes`` and ``facesim`` are throttleable background jobs.

Model anchors worth noting:

* ``ferret`` is the second-most-stressful profiled workload (large CPM
  rollback in Fig. 10), just under ``x264``.
* ``facesim`` sits exactly at the thread-normal stress anchor (0.6): it is
  the heaviest workload that still counts as "medium" for the
  thread-normal configuration of Table I.
* ``streamcluster`` has a deliberately *low* activity factor — the paper
  exploits the fact that it consumes little power even at high frequency
  when balancing QoS for seq2seq (Sec. VII-D).
* ``lu_cb`` is the power-hungry background co-runner the paper swaps in
  when spare power budget exists.
"""

from __future__ import annotations

from .base import Suite, Workload


def _parsec(
    name: str,
    activity: float,
    stress: float,
    didt: float,
    mem: float,
    latency_ms: float | None = None,
) -> Workload:
    return Workload(
        name=name,
        suite=Suite.PARSEC,
        activity=activity,
        stress=stress,
        didt_activity=didt,
        mem_boundedness=mem,
        baseline_latency_ms=latency_ms,
    )


FERRET = _parsec("ferret", 0.90, 0.95, 1.40, 0.22, latency_ms=120.0)
FLUIDANIMATE = _parsec("fluidanimate", 0.95, 0.80, 1.10, 0.22, latency_ms=55.0)
FACESIM = _parsec("facesim", 0.90, 0.60, 0.90, 0.45)
LU_CB = _parsec("lu_cb", 1.05, 0.58, 0.80, 0.40)
STREAMCLUSTER = _parsec("streamcluster", 0.45, 0.50, 0.50, 0.55)
BLACKSCHOLES = _parsec("blackscholes", 0.85, 0.35, 0.40, 0.05)
SWAPTIONS = _parsec("swaptions", 0.90, 0.40, 0.50, 0.05)
RAYTRACE = _parsec("raytrace", 0.85, 0.45, 0.55, 0.15)
BODYTRACK = _parsec("bodytrack", 0.85, 0.55, 0.70, 0.15, latency_ms=30.0)
VIPS = _parsec("vips", 0.88, 0.52, 0.65, 0.18, latency_ms=45.0)
CANNEAL = _parsec("canneal", 0.60, 0.50, 0.60, 0.70)
DEDUP = _parsec("dedup", 0.75, 0.53, 0.70, 0.45)

#: All modeled PARSEC benchmarks.
PARSEC_SUITE = (
    FERRET,
    FLUIDANIMATE,
    FACESIM,
    LU_CB,
    STREAMCLUSTER,
    BLACKSCHOLES,
    SWAPTIONS,
    RAYTRACE,
    BODYTRACK,
    VIPS,
    CANNEAL,
    DEDUP,
)
