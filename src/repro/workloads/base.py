"""Workload model: the four observables that matter to ATM.

The paper interacts with its benchmarks only through four measurable
properties, so a workload model here is exactly that quadruple:

``activity``
    Dynamic switching activity factor — sets core power together with
    voltage and frequency.  Idle ~0.06, typical single thread 0.7–1.0,
    SMT4 stressmark ~1.45.

``stress``
    Margin-stress intensity in [0, ~1]: how much extra CPM protection the
    workload demands beyond system idle, through the combination of corner
    timing paths it activates and the voltage noise it creates.  The
    characterization limits of Table I are anchored at stress 0.25
    (uBench), 0.6 (the heaviest "medium" application) and 1.0 (the worst
    application, x264).  Per-core sensitivity to this scalar lives in
    :attr:`repro.silicon.chipspec.CoreSpec.stress_curve`.

``didt_activity``
    Rate/magnitude scale of fast di/dt events for the transient simulator
    (:mod:`repro.power.didt`).  Smooth uBench loops sit near 0.3; periodic
    pipeline-flush workloads like x264 exceed 1.5.

``mem_boundedness``
    Fraction of runtime insensitive to core frequency (cache-miss stalls).
    Determines the slope of the performance-vs-frequency line (Fig. 12b):
    ``speedup(f) = 1 / ((1-mu) * f0/f + mu)``.

Critical (user-facing) workloads additionally carry a baseline latency at
the static-margin frequency so experiments can report absolute numbers
(e.g. SqueezeNet's 80 ms in Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..units import STATIC_MARGIN_MHZ, require_positive


class Suite(Enum):
    """Which benchmark family a workload belongs to."""

    IDLE = "idle"
    UBENCH = "ubench"
    SPEC = "spec2017"
    PARSEC = "parsec"
    DNN = "dnn"
    STRESSMARK = "stressmark"


@dataclass(frozen=True)
class Workload:
    """One workload's ATM-relevant behaviour.

    See the module docstring for the meaning of each observable.
    ``threads_per_core`` distinguishes SMT configurations (the stressmark
    runs four daxpy threads per core); ``baseline_latency_ms`` is set for
    latency-critical applications only.
    """

    name: str
    suite: Suite
    activity: float
    stress: float
    didt_activity: float
    mem_boundedness: float
    threads_per_core: int = 1
    baseline_latency_ms: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must be non-empty")
        if self.activity < 0.0:
            raise ConfigurationError(f"{self.name}: activity must be >= 0")
        if self.stress < 0.0:
            raise ConfigurationError(f"{self.name}: stress must be >= 0")
        if self.didt_activity < 0.0:
            raise ConfigurationError(f"{self.name}: didt_activity must be >= 0")
        if not (0.0 <= self.mem_boundedness < 1.0):
            raise ConfigurationError(
                f"{self.name}: mem_boundedness must be in [0, 1)"
            )
        if self.threads_per_core < 1:
            raise ConfigurationError(f"{self.name}: threads_per_core must be >= 1")
        if self.baseline_latency_ms is not None:
            require_positive(self.baseline_latency_ms, "baseline_latency_ms")

    # -- performance model ---------------------------------------------------

    def _relative_time(self, freq_mhz: float) -> float:
        """Runtime at ``freq_mhz`` relative to the static-margin runtime.

        ``mem_boundedness`` is calibrated at the static-margin frequency:
        it is the runtime fraction spent in frequency-insensitive memory
        stalls at 4.2 GHz.  Compute time scales with the clock; stall
        time does not.
        """
        require_positive(freq_mhz, "freq_mhz")
        mu = self.mem_boundedness
        return (1.0 - mu) * (STATIC_MARGIN_MHZ / freq_mhz) + mu

    def speedup_at(self, freq_mhz: float, base_mhz: float = STATIC_MARGIN_MHZ) -> float:
        """Relative performance at ``freq_mhz`` versus ``base_mhz``.

        Compute-bound work scales with frequency; memory-stall time does
        not.  The resulting curve is near-linear over the ATM range, which
        is why the paper's per-application linear predictor works.  Both
        operands are expressed through the absolute-runtime model, so
        speedups compose exactly: ``S(a→c) == S(a→b) · S(b→c)``.
        """
        require_positive(base_mhz, "base_mhz")
        return self._relative_time(base_mhz) / self._relative_time(freq_mhz)

    def latency_ms_at(
        self, freq_mhz: float, base_mhz: float = STATIC_MARGIN_MHZ
    ) -> float:
        """Absolute latency at ``freq_mhz`` for latency-critical workloads.

        Raises :class:`ConfigurationError` if the workload has no baseline
        latency (it is not a latency-critical application).
        """
        if self.baseline_latency_ms is None:
            raise ConfigurationError(
                f"{self.name} has no baseline latency; it is not latency-critical"
            )
        return self.baseline_latency_ms / self.speedup_at(freq_mhz, base_mhz)

    @property
    def is_latency_critical(self) -> bool:
        """Whether the workload carries an absolute latency baseline."""
        return self.baseline_latency_ms is not None


#: The system-idle pseudo-workload: background OS tasks only.  Stress zero
#: by definition — it anchors the idle limits of Table I.
IDLE = Workload(
    name="idle",
    suite=Suite.IDLE,
    activity=0.06,
    stress=0.0,
    didt_activity=0.05,
    mem_boundedness=0.0,
)
