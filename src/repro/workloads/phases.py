"""Time-phased workload behaviour.

Real applications are not stationary: x264 alternates motion-estimation
bursts with entropy-coding stretches, compilers alternate parsing with
optimization, and the paper's root-cause discussion (Sec. VI) blames
exactly these *dynamic instruction streams* for the difficulty of
predicting CPM settings.  A :class:`PhasedWorkload` strings together
timed phases, each a plain :class:`~repro.workloads.base.Workload`
snapshot, and exposes the observables as functions of time:

* the transient simulator can draw di/dt events against the phase-varying
  ``didt_activity`` (bursts cluster in noisy phases);
* steady-state consumers use the duty-weighted averages, which are
  guaranteed consistent with the underlying phases;
* the *stress envelope* (max over phases) is what characterization
  effectively measures, since a limit must survive every phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import require_positive
from .base import Suite, Workload


@dataclass(frozen=True)
class Phase:
    """One timed behavioural phase."""

    workload: Workload
    duration_ms: float

    def __post_init__(self) -> None:
        require_positive(self.duration_ms, "duration_ms")


class PhasedWorkload:
    """A periodic sequence of behavioural phases.

    The sequence repeats: time wraps modulo the total period, matching the
    frame/iteration structure of the motivating applications.
    """

    def __init__(self, name: str, phases: tuple[Phase, ...] | list[Phase]):
        if not name:
            raise ConfigurationError("phased workload needs a name")
        if not phases:
            raise ConfigurationError("phased workload needs at least one phase")
        self._name = name
        self._phases = tuple(phases)
        self._period_ms = sum(p.duration_ms for p in self._phases)

    @property
    def name(self) -> str:
        return self._name

    @property
    def phases(self) -> tuple[Phase, ...]:
        return self._phases

    @property
    def period_ms(self) -> float:
        """Length of one full phase cycle."""
        return self._period_ms

    def phase_at(self, time_ms: float) -> Phase:
        """The phase active at ``time_ms`` (time wraps at the period)."""
        if time_ms < 0.0:
            raise ConfigurationError(f"time must be >= 0, got {time_ms}")
        offset = time_ms % self._period_ms
        for phase in self._phases:
            if offset < phase.duration_ms:
                return phase
            offset -= phase.duration_ms
        return self._phases[-1]  # numerical edge at exactly the period

    def didt_activity_at(self, time_ms: float) -> float:
        """Instantaneous di/dt activity (drives transient event rates)."""
        return self.phase_at(time_ms).workload.didt_activity

    def activity_at(self, time_ms: float) -> float:
        """Instantaneous switching activity (drives power)."""
        return self.phase_at(time_ms).workload.activity

    def _duty_weighted(self, attribute: str) -> float:
        total = 0.0
        for phase in self._phases:
            total += getattr(phase.workload, attribute) * phase.duration_ms
        return total / self._period_ms

    def mean_workload(self) -> Workload:
        """Duty-weighted stationary equivalent for steady-state consumers.

        Stress uses the *envelope* (max over phases), not the mean: a CPM
        configuration must survive the worst phase, however brief.
        """
        return Workload(
            name=f"{self._name}(mean)",
            suite=self._phases[0].workload.suite,
            activity=self._duty_weighted("activity"),
            stress=self.stress_envelope(),
            didt_activity=self._duty_weighted("didt_activity"),
            mem_boundedness=self._duty_weighted("mem_boundedness"),
        )

    def stress_envelope(self) -> float:
        """Maximum stress over the phases — what characterization sees."""
        return max(p.workload.stress for p in self._phases)


def x264_like(name: str = "x264_phased") -> PhasedWorkload:
    """A two-phase model of x264's burst structure.

    Motion estimation: violent di/dt, compute-bound.  Entropy coding:
    calm, moderately memory-bound.  The duty-weighted means land near the
    stationary x264 model while the envelope preserves its worst-case
    stress — showing why averages under-predict rollback requirements.
    """
    burst = Workload(
        name="x264.motion",
        suite=Suite.SPEC,
        activity=1.05,
        stress=1.0,
        didt_activity=2.4,
        mem_boundedness=0.05,
    )
    calm = Workload(
        name="x264.entropy",
        suite=Suite.SPEC,
        activity=0.85,
        stress=0.55,
        didt_activity=0.8,
        mem_boundedness=0.12,
    )
    return PhasedWorkload(
        name,
        (Phase(burst, duration_ms=12.0), Phase(calm, duration_ms=21.0)),
    )
