"""Workload models: uBench, SPEC CPU 2017, PARSEC, DNN, and stressmarks.

A workload is described by the four observables ATM cares about (activity,
margin stress, di/dt activity, memory-boundedness); see
:mod:`repro.workloads.base`.  :mod:`repro.workloads.registry` provides
name-based lookup; :mod:`repro.workloads.classification` implements the
paper's Table II critical/background taxonomy.
"""

from .base import IDLE, Suite, Workload
from .phases import Phase, PhasedWorkload, x264_like
from .classification import (
    AppClass,
    MemBehavior,
    Role,
    TABLE2,
    classify,
    is_critical,
    may_colocate,
)
from .dnn import BABI, DNN_SUITE, MLP, RESNET, SEQ2SEQ, SQUEEZENET, VGG19
from .parsec import (
    BLACKSCHOLES,
    BODYTRACK,
    FACESIM,
    FERRET,
    FLUIDANIMATE,
    LU_CB,
    PARSEC_SUITE,
    RAYTRACE,
    STREAMCLUSTER,
    SWAPTIONS,
    VIPS,
)
from .registry import (
    ALL_WORKLOADS,
    by_suite,
    get_workload,
    medium_and_light_applications,
    realistic_applications,
)
from .spec import GCC, LEELA, MCF, SPEC_SUITE, X264
from .stressmark import (
    BEYOND_WORST_VIRUS,
    ISA_SUITE,
    POWER_VIRUS,
    STRESS_BATTERY,
    VOLTAGE_VIRUS,
)
from .ubench import COREMARK, DAXPY, DAXPY_SMT4, STREAM, UBENCH_SUITE

__all__ = [
    "IDLE",
    "Suite",
    "Workload",
    "Phase",
    "PhasedWorkload",
    "x264_like",
    "AppClass",
    "MemBehavior",
    "Role",
    "TABLE2",
    "classify",
    "is_critical",
    "may_colocate",
    "ALL_WORKLOADS",
    "by_suite",
    "get_workload",
    "medium_and_light_applications",
    "realistic_applications",
    "UBENCH_SUITE",
    "COREMARK",
    "DAXPY",
    "DAXPY_SMT4",
    "STREAM",
    "SPEC_SUITE",
    "GCC",
    "MCF",
    "X264",
    "LEELA",
    "PARSEC_SUITE",
    "FERRET",
    "FLUIDANIMATE",
    "FACESIM",
    "LU_CB",
    "STREAMCLUSTER",
    "BLACKSCHOLES",
    "SWAPTIONS",
    "RAYTRACE",
    "BODYTRACK",
    "VIPS",
    "DNN_SUITE",
    "SQUEEZENET",
    "RESNET",
    "VGG19",
    "SEQ2SEQ",
    "BABI",
    "MLP",
    "STRESS_BATTERY",
    "VOLTAGE_VIRUS",
    "POWER_VIRUS",
    "ISA_SUITE",
    "BEYOND_WORST_VIRUS",
]
