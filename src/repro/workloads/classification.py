"""Critical/background application classification (paper Table II).

The management scheme treats applications in two roles:

* **critical** — user-facing, latency-sensitive jobs (DNN inference,
  object detection, content similarity search, real-time image
  processing).  They get the fastest fine-tuned cores and a QoS target.
* **background** — throughput jobs tolerant of throttling (ML training,
  compilation, stock-price estimation, 3D rendering, compression).

Orthogonally, each application is either memory-intensive or not; the
paper sidesteps memory-subsystem interference (a general multicore
problem, not an ATM one) by never co-locating two memory-intensive
workloads, and the scheduler here enforces the same rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from .base import Workload


class Role(Enum):
    """Scheduling role of an application."""

    CRITICAL = "critical"
    BACKGROUND = "background"


class MemBehavior(Enum):
    """Memory-subsystem interference class."""

    INTENSIVE = "intensive"
    NON_INTENSIVE = "non-intensive"


@dataclass(frozen=True)
class AppClass:
    """Role and memory behaviour of one application."""

    role: Role
    mem: MemBehavior


#: Table II of the paper, extended to every workload this library models.
#: The paper's explicit entries are kept verbatim; remaining workloads are
#: classified by the same criteria (user-facing latency job vs throttleable
#: throughput job; memory-intensity from the model's mem_boundedness).
TABLE2: dict[str, AppClass] = {
    # -- critical, memory-intensive (paper row 1, col 1)
    "resnet": AppClass(Role.CRITICAL, MemBehavior.INTENSIVE),
    "vgg19": AppClass(Role.CRITICAL, MemBehavior.INTENSIVE),
    "ferret": AppClass(Role.CRITICAL, MemBehavior.INTENSIVE),
    "fluidanimate": AppClass(Role.CRITICAL, MemBehavior.INTENSIVE),
    # -- background, memory-intensive (paper row 1, col 2)
    "mlp": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "gcc": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "facesim": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "lu_cb": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "streamcluster": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    # -- critical, non-intensive (paper row 2, col 1)
    "squeezenet": AppClass(Role.CRITICAL, MemBehavior.NON_INTENSIVE),
    "seq2seq": AppClass(Role.CRITICAL, MemBehavior.NON_INTENSIVE),
    "babi": AppClass(Role.CRITICAL, MemBehavior.NON_INTENSIVE),
    "bodytrack": AppClass(Role.CRITICAL, MemBehavior.NON_INTENSIVE),
    "vips": AppClass(Role.CRITICAL, MemBehavior.NON_INTENSIVE),
    # -- background, non-intensive (paper row 2, col 2)
    "blackscholes": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "x264": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "swaptions": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "raytrace": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    # -- extensions beyond the paper's explicit table
    "mcf": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "leela": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "exchange2": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "deepsjeng": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "xz": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "perlbench": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "omnetpp": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "xalancbmk": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "bwaves": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "lbm": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "cactuBSSN": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "imagick": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "nab": AppClass(Role.BACKGROUND, MemBehavior.NON_INTENSIVE),
    "fotonik3d": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "wrf": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "roms": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "canneal": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
    "dedup": AppClass(Role.BACKGROUND, MemBehavior.INTENSIVE),
}


def classify(workload: Workload | str) -> AppClass:
    """Return the Table II classification of a workload.

    Accepts a :class:`Workload` or a bare name; raises for workloads the
    table does not cover (uBench and stressmarks are test-time tools, not
    schedulable applications).
    """
    name = workload if isinstance(workload, str) else workload.name
    try:
        return TABLE2[name]
    except KeyError:
        raise ConfigurationError(
            f"{name!r} is not a schedulable application (no Table II entry)"
        ) from None


def is_critical(workload: Workload | str) -> bool:
    """True when the workload is a user-facing critical application."""
    return classify(workload).role is Role.CRITICAL


def may_colocate(a: Workload | str, b: Workload | str) -> bool:
    """Whether two applications may share a chip under the paper's rule.

    Two memory-intensive applications are never co-located, keeping the
    evaluation free of memory-subsystem interference.
    """
    return not (
        classify(a).mem is MemBehavior.INTENSIVE
        and classify(b).mem is MemBehavior.INTENSIVE
    )
