"""Test-time stressmarks (paper Sec. VII-A).

The paper's deployment procedure validates each core's thread-worst CPM
configuration with a combined stress-test designed to exceed any realistic
workload:

* a **voltage virus** that throttles every core's instruction issue to one
  out of 128 cycles and releases them *synchronously*, producing
  chip-aligned di/dt current steps (worst-case voltage noise);
* **32 daxpy threads** (four per core) raising chip power to ~160 W and
  die temperature to ~70 °C, maximizing the DC voltage drop;
* an **ISA coverage suite** standing in for the vendor's tailored
  verification tests that touch all architecturally reachable paths.

Their stress intensities sit at (or just below) 1.0 — the thread-worst
anchor — encoding the paper's measured result that the thread-worst
configuration sustains all of the stressmarks.  A hypothetical
super-adversarial virus above 1.0 is also provided for ablation A3, which
studies how much rollback protects against workloads stronger than
anything profiled.
"""

from __future__ import annotations

from .base import Suite, Workload

#: Synchronized issue-throttle virus on top of 32 daxpy threads: maximal
#: di/dt and maximal DC drop at once.
VOLTAGE_VIRUS = Workload(
    name="voltage_virus",
    suite=Suite.STRESSMARK,
    activity=1.45,
    stress=1.00,
    didt_activity=2.50,
    mem_boundedness=0.0,
    threads_per_core=4,
)

#: Sustained maximum-power component alone (no synchronized throttling).
POWER_VIRUS = Workload(
    name="power_virus",
    suite=Suite.STRESSMARK,
    activity=1.50,
    stress=0.90,
    didt_activity=0.60,
    mem_boundedness=0.0,
    threads_per_core=4,
)

#: Stand-in for the vendor's ISA verification suite: wide path coverage,
#: moderate power.
ISA_SUITE = Workload(
    name="isa_suite",
    suite=Suite.STRESSMARK,
    activity=0.95,
    stress=0.97,
    didt_activity=1.20,
    mem_boundedness=0.05,
)

#: A hypothetical adversary *beyond* the profiled worst case, used only by
#: the rollback ablation (never by the deployment procedure itself).
BEYOND_WORST_VIRUS = Workload(
    name="beyond_worst_virus",
    suite=Suite.STRESSMARK,
    activity=1.50,
    stress=1.12,
    didt_activity=3.00,
    mem_boundedness=0.0,
    threads_per_core=4,
)

#: The stress-test battery run by the deployment procedure, mirroring the
#: paper's combination.
STRESS_BATTERY = (VOLTAGE_VIRUS, POWER_VIRUS, ISA_SUITE)
