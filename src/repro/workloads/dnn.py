"""Deep-learning workload models (paper Secs. I, VII).

The paper's motivating critical applications are single-thread DNN
inference jobs: SqueezeNet image classification (the Fig. 2 running
example, 80 ms per inference at the 4.2 GHz static margin), ResNet and
VGG19 CNNs, a seq2seq RNN, and the bAbI LSTM question-answering task.
``mlp`` models a machine-learning *training* job and belongs to the
background class of Table II.

SqueezeNet's near-zero memory-boundedness is what lets fine-tuned ATM cut
its latency to ~68 ms on a 4.9 GHz core: inference on these small models is
compute-bound on a server-class cache hierarchy.
"""

from __future__ import annotations

from .base import Suite, Workload


def _dnn(
    name: str,
    activity: float,
    stress: float,
    didt: float,
    mem: float,
    latency_ms: float | None = None,
) -> Workload:
    return Workload(
        name=name,
        suite=Suite.DNN,
        activity=activity,
        stress=stress,
        didt_activity=didt,
        mem_boundedness=mem,
        baseline_latency_ms=latency_ms,
    )


SQUEEZENET = _dnn("squeezenet", 0.90, 0.45, 0.60, 0.04, latency_ms=80.0)
RESNET = _dnn("resnet", 0.95, 0.62, 0.80, 0.25, latency_ms=220.0)
VGG19 = _dnn("vgg19", 1.00, 0.68, 0.85, 0.22, latency_ms=400.0)
SEQ2SEQ = _dnn("seq2seq", 0.85, 0.50, 0.60, 0.12, latency_ms=35.0)
BABI = _dnn("babi", 0.80, 0.42, 0.50, 0.10, latency_ms=18.0)
MLP = _dnn("mlp", 1.00, 0.55, 0.70, 0.30)

#: All modeled deep-learning workloads.
DNN_SUITE = (SQUEEZENET, RESNET, VGG19, SEQ2SEQ, BABI, MLP)
