"""Micro-benchmarks: coremark, daxpy, stream (paper Sec. V-A).

The three uBench programs collectively touch all main parts of the
microarchitecture — control/branch/integer (coremark), floating point
(daxpy), load-store and cache misses (stream) — while creating very little
system noise: controlled, smooth loops with no periodic pipeline flushes.
That is why their stress intensities cluster tightly around the uBench
anchor (0.25) despite their different functional-unit coverage, matching
the paper's observation that all three behave alike on the problematic
cores (Sec. V-B).
"""

from __future__ import annotations

from .base import Suite, Workload

#: Stress-intensity anchor shared by the micro-benchmarks; must equal
#: :data:`repro.silicon.chipspec.STRESS_UBENCH`.
UBENCH_STRESS = 0.25

COREMARK = Workload(
    name="coremark",
    suite=Suite.UBENCH,
    activity=0.85,
    stress=UBENCH_STRESS,
    didt_activity=0.25,
    mem_boundedness=0.02,
)

DAXPY = Workload(
    name="daxpy",
    suite=Suite.UBENCH,
    activity=1.00,
    stress=UBENCH_STRESS,
    didt_activity=0.30,
    mem_boundedness=0.10,
)

#: daxpy with all four SMT threads busy — the high-power configuration the
#: paper uses to maximize DC voltage drop (8 cores x 4 threads = the "32
#: daxpy threads" load) and as the stressmark's power component.
DAXPY_SMT4 = Workload(
    name="daxpy_smt4",
    suite=Suite.UBENCH,
    activity=1.45,
    stress=UBENCH_STRESS,
    didt_activity=0.35,
    mem_boundedness=0.10,
    threads_per_core=4,
)

STREAM = Workload(
    name="stream",
    suite=Suite.UBENCH,
    activity=0.70,
    stress=0.24,
    didt_activity=0.35,
    mem_boundedness=0.70,
)

#: The programs used by the uBench characterization step, in the order the
#: paper lists them.
UBENCH_SUITE = (COREMARK, DAXPY, STREAM)
