"""Per-run manifests: what ran, under what inputs, with what outcome.

A :class:`RunManifest` is the reproducibility receipt of one experiment
run: the experiment id, the seed, the limit-table fingerprint the platform
model is conditioned on, the result's metric dict, the metrics-registry
summary, and a digest of the emitted event stream.  Serialization is
canonical (sorted keys, no host timestamps), so two runs with the same
seed write byte-identical manifests — which is exactly the property the
harness tests assert, and what makes manifests comparable across PRs.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError

#: Manifest schema version (bump on incompatible shape changes).
MANIFEST_SCHEMA = 1


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def fingerprint(document: object) -> str:
    """Canonical-JSON SHA-256 of any JSON-native document."""
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return sha256_hex(canonical.encode("utf-8"))


def testbed_limits_fingerprint() -> str:
    """Fingerprint of the published Table I anchor rows.

    The testbed limit constants are the platform-model input every
    experiment is conditioned on; fingerprinting them in the manifest
    makes cross-PR result comparisons detect silent model retuning.
    """
    from ..silicon.chipspec import (
        TESTBED_IDLE_LIMITS,
        TESTBED_THREAD_NORMAL_LIMITS,
        TESTBED_THREAD_WORST_LIMITS,
        TESTBED_UBENCH_LIMITS,
    )

    return fingerprint(
        {
            "idle": list(TESTBED_IDLE_LIMITS),
            "ubench": list(TESTBED_UBENCH_LIMITS),
            "thread_normal": list(TESTBED_THREAD_NORMAL_LIMITS),
            "thread_worst": list(TESTBED_THREAD_WORST_LIMITS),
        }
    )


@dataclass(frozen=True)
class RunManifest:
    """Reproducibility receipt of one experiment run."""

    experiment_id: str
    seed: int
    limits_fingerprint: str
    result_metrics: dict[str, float] = field(default_factory=dict)
    metrics_summary: dict[str, dict] = field(default_factory=dict)
    event_count: int = 0
    events_sha256: str = ""
    platform: str = ""

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ConfigurationError("experiment_id must be non-empty")
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    def to_dict(self) -> dict:
        """JSON-native form, with schema/kind header."""
        return {
            "kind": "run_manifest",
            "schema": MANIFEST_SCHEMA,
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "limits_fingerprint": self.limits_fingerprint,
            "result_metrics": dict(self.result_metrics),
            "metrics_summary": dict(self.metrics_summary),
            "event_count": self.event_count,
            "events_sha256": self.events_sha256,
            "platform": self.platform,
        }

    def render(self) -> str:
        """Short human-readable summary (full detail is the JSON form)."""
        lines = [
            f"run manifest: {self.experiment_id} (seed {self.seed})",
            f"  limits fingerprint: {self.limits_fingerprint[:16]}…",
            f"  events: {self.event_count} (sha256 "
            f"{self.events_sha256[:16] + '…' if self.events_sha256 else 'n/a'})",
            f"  metrics: {len(self.result_metrics)} result, "
            f"{len(self.metrics_summary)} instrument(s)",
        ]
        return "\n".join(lines)


def default_platform_tag() -> str:
    """Deterministic-per-machine platform tag (no hostnames, no clocks)."""
    from .. import __version__

    major, minor = sys.version_info[:2]
    return f"repro-{__version__}/python-{major}.{minor}/{sys.platform}"


def build_manifest(
    experiment_id: str,
    seed: int,
    *,
    result_metrics: dict[str, float] | None = None,
    metrics_summary: dict[str, dict] | None = None,
    events_path: str | Path | None = None,
    event_count: int = 0,
) -> RunManifest:
    """Assemble a manifest, hashing the event stream when one was written.

    ``events_path`` may be a plain JSONL file, a ``*.segments.json``
    index written by :class:`~repro.obs.stream.rotate.RotatingJsonlSink`,
    or the logical path of a rotated stream (index sitting beside it).
    The segmented digest is the sha256 of the logical concatenation of
    the segment bytes — identical to the single-file digest — so rotation
    never changes manifest bytes.
    """
    from .stream.rotate import (
        is_segment_index,
        segment_index_path,
        segmented_events_sha256,
    )

    events_sha256 = ""
    if events_path is not None:
        events_file = Path(events_path)
        if is_segment_index(events_file):
            events_sha256, _ = segmented_events_sha256(events_file)
        elif not events_file.exists() and segment_index_path(events_file).exists():
            events_sha256, _ = segmented_events_sha256(
                segment_index_path(events_file)
            )
        elif not events_file.exists():
            raise ConfigurationError(f"no event stream at {events_file}")
        else:
            events_sha256 = sha256_hex(events_file.read_bytes())
    return RunManifest(
        experiment_id=experiment_id,
        seed=seed,
        limits_fingerprint=testbed_limits_fingerprint(),
        result_metrics=dict(result_metrics or {}),
        metrics_summary=dict(metrics_summary or {}),
        event_count=event_count,
        events_sha256=events_sha256,
        platform=default_platform_tag(),
    )


def save_manifest(manifest: RunManifest, path: str | Path) -> Path:
    """Write the canonical JSON form (sorted keys, trailing newline)."""
    target = Path(path)
    target.write_text(
        json.dumps(manifest.to_dict(), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return target


def load_manifest(path: str | Path) -> RunManifest:
    """Read a manifest written by :func:`save_manifest`, with validation."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no manifest at {source}")
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{source} is not valid JSON: {exc}") from exc
    if document.get("kind") != "run_manifest":
        raise ConfigurationError(
            f"expected a run_manifest document, got {document.get('kind')!r}"
        )
    schema = document.get("schema")
    if not isinstance(schema, int) or schema > MANIFEST_SCHEMA:
        raise ConfigurationError(
            f"unsupported manifest schema {schema!r} (this library reads "
            f"<= {MANIFEST_SCHEMA})"
        )
    try:
        return RunManifest(
            experiment_id=str(document["experiment_id"]),
            seed=int(document["seed"]),
            limits_fingerprint=str(document["limits_fingerprint"]),
            result_metrics=dict(document.get("result_metrics", {})),
            metrics_summary=dict(document.get("metrics_summary", {})),
            event_count=int(document.get("event_count", 0)),
            events_sha256=str(document.get("events_sha256", "")),
            platform=str(document.get("platform", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed manifest {source}: {exc}") from exc
