"""Span-based tracing keyed on simulated ticks.

A :class:`Tracer` produces nested :class:`Span` objects via the
``span(...)`` context manager::

    with tracer.span("characterize.core", core="P0C3"):
        with tracer.span("characterize.idle"):
            ...

Spans are keyed on a caller-supplied *tick source* — by default the
observability context wires in its event sequence counter, so a span's
``start_tick``/``end_tick`` measure simulated progress (how many events
the work inside emitted), never host time.  The only exception is the
opt-in profiling mode used by the experiment harness for wall-clock
performance work: constructing the tracer with
:func:`repro.obs.profiling.wall_clock_tick_source` additionally stamps
each finished span with its wall-clock duration (``wall_s``).  That mode
exists for measuring the *harness*, not the simulation, and is documented
with the RL002 exemption in OBSERVABILITY.md.

Finished spans are kept in completion order and, when the tracer is given
an emit function, also forwarded as
:class:`~repro.obs.events.SpanEvent` records so ``repro trace`` can show
them next to the simulators' events.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Span:
    """One finished span."""

    name: str
    depth: int
    start_tick: float
    end_tick: float
    attrs: tuple[tuple[str, str], ...] = ()
    wall_s: float = -1.0  # wall-clock seconds; -1.0 outside profiling mode

    @property
    def tick_extent(self) -> float:
        """Simulated progress covered by this span, in ticks."""
        return self.end_tick - self.start_tick

    def render_attrs(self) -> str:
        """``k=v`` pairs joined with spaces (stable order of declaration)."""
        return " ".join(f"{key}={value}" for key, value in self.attrs)


class Tracer:
    """Builds nested spans from a deterministic tick source.

    Parameters
    ----------
    tick_source:
        Zero-argument callable returning the current tick.  Defaults to a
        constant 0.0 source (spans then only carry structure, no extent).
    wall_source:
        Optional zero-argument callable returning wall-clock seconds;
        supplying one turns on profiling mode.  Only
        :mod:`repro.obs.profiling` provides such a source.
    emit:
        Optional callback receiving each finished :class:`Span`; the
        observability context uses it to forward spans to the event sink.
    """

    def __init__(
        self,
        tick_source: Callable[[], float] | None = None,
        *,
        wall_source: Callable[[], float] | None = None,
        emit: Callable[[Span], None] | None = None,
    ):
        self._tick_source = tick_source if tick_source is not None else lambda: 0.0
        self._wall_source = wall_source
        self._emit = emit
        self._stack: list[str] = []
        self._finished: list[Span] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    @property
    def finished(self) -> tuple[Span, ...]:
        """Every completed span, in completion order (children first)."""
        return tuple(self._finished)

    def spans_named(self, name: str) -> tuple[Span, ...]:
        """Finished spans with exactly this name."""
        return tuple(span for span in self._finished if span.name == name)

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a nested span; closes (and records it) on exit."""
        if not name:
            raise ConfigurationError("span name must be non-empty")
        start_tick = float(self._tick_source())
        wall_start = self._wall_source() if self._wall_source is not None else None
        depth = len(self._stack)
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()
            span = Span(
                name=name,
                depth=depth,
                start_tick=start_tick,
                end_tick=float(self._tick_source()),
                attrs=tuple((key, str(value)) for key, value in attrs.items()),
                wall_s=(
                    self._wall_source() - wall_start
                    if wall_start is not None and self._wall_source is not None
                    else -1.0
                ),
            )
            self._finished.append(span)
            if self._emit is not None:
                self._emit(span)
