"""The observability context: registry + tracer + sink, globally installable.

Simulators and the management layer are instrumented against one small
surface: ``get_obs()`` returns the currently-installed
:class:`Observability`; call sites guard event construction with its
``enabled`` flag so the disabled default costs one global lookup and one
attribute check per instrumentation point — cheap enough to leave the
hooks permanently compiled in.

The context assigns every emitted event its ``seq`` — the subsystem's
monotonic simulated tick — and wires the tracer's default tick source to
that same counter, so span extents measure "events emitted inside this
span".  Nothing here reads the host clock (profiling-mode tracers are
built explicitly via :mod:`repro.obs.profiling`).

Usage::

    obs = Observability(sink=RingBufferSink())
    with observed(obs):
        run_experiment("fig11", seed=2019)
    rollbacks = obs.sink.events(RollbackEvent)
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import ConfigurationError
from .events import ObsEvent, SpanEvent
from .metrics import MetricsRegistry
from .sinks import EventSink
from .trace import Span, Tracer


class Observability:
    """One run's observability state.

    Parameters
    ----------
    sink:
        Where events go; ``None`` leaves event emission disabled.
    tracer:
        Override the default (event-tick-keyed) tracer — e.g. a
        profiling-mode tracer for harness timing work.
    metrics:
        Override the (fresh, empty) metrics registry.
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self._seq = 0
        self.sink = sink
        #: True when events should be constructed at all: a sink is
        #: attached *and* wants them.  Metrics-only sinks (NullSink)
        #: leave :attr:`enabled` True — instruments still collect — while
        #: hot instrumentation sites skip event construction entirely.
        self.events_enabled = sink is not None and sink.wants_events
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(lambda: float(self._seq), emit=self._emit_span)
        )

    @property
    def enabled(self) -> bool:
        """True when telemetry is on (a sink is attached; metrics collect)."""
        return self.sink is not None

    @property
    def next_seq(self) -> int:
        """Sequence number the next emitted event will receive."""
        return self._seq

    def emit(self, event: ObsEvent) -> None:
        """Forward ``event`` to the sink, stamping its sequence number.

        Events are constructed by call sites with ``seq=0`` placeholders;
        emission rewrites the real sequence.  No-op when disabled, but call
        sites should still guard with :attr:`enabled` to avoid building
        event objects that would be dropped.
        """
        if not self.events_enabled:
            return
        if event.seq != self._seq:
            # Call sites build each event fresh with a seq=0 placeholder;
            # stamping through object.__setattr__ (the frozen-dataclass
            # escape hatch) avoids reconstructing the instance on the
            # characterization hot path.
            object.__setattr__(event, "seq", self._seq)
        self.sink.emit(event)
        self._seq += 1

    def emit_new(self, cls: type[ObsEvent], **fields) -> None:
        """Construct-and-emit fast path for hot instrumentation sites.

        Equivalent to building ``cls(seq=0, **fields)`` and calling
        :meth:`emit`, minus the frozen-dataclass construction tax (one
        ``object.__setattr__`` per field): the instance dict is installed
        wholesale through the same escape hatch.  Callers must pass
        exactly the event's non-``seq`` fields — there is no per-field
        validation here; the JSONL round-trip (``event_from_dict``)
        rejects malformed shapes downstream.  Field insertion order never
        reaches disk: the wire form sorts keys.
        """
        sink = self.sink
        if sink is None or not self.events_enabled:
            return
        fields["seq"] = self._seq
        event = object.__new__(cls)
        object.__setattr__(event, "__dict__", fields)
        sink.emit(event)
        self._seq += 1

    def _emit_span(self, span: Span) -> None:
        if self.sink is None:
            return
        self.emit(
            SpanEvent(
                seq=0,
                name=span.name,
                depth=span.depth,
                start_tick=span.start_tick,
                end_tick=span.end_tick,
                attrs=span.render_attrs(),
                wall_s=span.wall_s,
            )
        )

    def close(self) -> None:
        """Close the sink, if any."""
        if self.sink is not None:
            self.sink.close()


#: The disabled default installed at import time.
_DISABLED = Observability(sink=None)

_current: Observability = _DISABLED


def get_obs() -> Observability:
    """The currently-installed observability context (never ``None``)."""
    return _current


def install(obs: Observability) -> Observability:
    """Install ``obs`` globally; returns the previously-installed context."""
    global _current
    if obs is None:  # type: ignore[unreachable]
        raise ConfigurationError("install a disabled Observability, not None")
    previous = _current
    _current = obs
    return previous


@contextmanager
def observed(obs: Observability):
    """Install ``obs`` for the duration of the block, then restore."""
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)
