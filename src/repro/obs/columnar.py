"""Columnar sample storage — the backend for traces and gauges.

:class:`TraceRecorder` is a light column store: declare the column names
once, append one row per sample, and read back numpy arrays for analysis.
It historically lived in :mod:`repro.atm.telemetry` (which still re-exports
it) and is now also the storage backend of :class:`repro.obs.metrics.Gauge`.

Storage is a single preallocated ``(capacity, n_columns)`` float64 array
grown by amortized doubling, so ``record`` is O(n_columns) and ``column``
is a single slice-copy instead of the former O(rows) tuple unpack.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError

#: Rows allocated up front; doubles on demand.
_INITIAL_CAPACITY = 64


class TraceRecorder:
    """Append-only columnar trace backed by a growable numpy array."""

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ConfigurationError("a trace needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError("trace column names must be unique")
        self._columns = tuple(columns)
        self._index = {name: i for i, name in enumerate(self._columns)}
        self._data = np.empty((_INITIAL_CAPACITY, len(self._columns)))
        self._size = 0

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing array (capacity, not just rows)."""
        return int(self._data.nbytes)

    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        doubled = np.empty((2 * self._data.shape[0], self._data.shape[1]))
        doubled[: self._size] = self._data[: self._size]
        self._data = doubled

    def record(self, **values: float) -> None:
        """Append one sample; every declared column must be provided."""
        if len(values) != len(self._columns) or set(values) != set(self._columns):
            raise ConfigurationError(
                f"expected exactly columns {self._columns}, got {tuple(values)}"
            )
        if self._size == self._data.shape[0]:
            self._grow()
        row = self._data[self._size]
        for name, column_index in self._index.items():
            row[column_index] = float(values[name])
        self._size += 1

    def column(self, name: str) -> np.ndarray:
        """All samples of one column as a (copied) numpy array."""
        if name not in self._index:
            raise ConfigurationError(
                f"unknown column {name!r}; trace has {self._columns}"
            )
        return self._data[: self._size, self._index[name]].copy()

    def summary(self, name: str) -> dict[str, float]:
        """Min / max / mean / p50 / p95 / p99 of one column (empty traces raise)."""
        if name not in self._index:
            raise ConfigurationError(
                f"unknown column {name!r}; trace has {self._columns}"
            )
        if self._size == 0:
            raise ConfigurationError("trace is empty")
        data = self._data[: self._size, self._index[name]]
        return {
            "min": float(data.min()),
            "max": float(data.max()),
            "mean": float(data.mean()),
            "p50": float(np.percentile(data, 50.0)),
            "p95": float(np.percentile(data, 95.0)),
            "p99": float(np.percentile(data, 99.0)),
        }
