"""Deterministic alert evaluation over tsdb tick windows.

:func:`evaluate_rules` is a pure function of ``(tsdb, rules, slos)``:
windows are visited in tick order, firings are sorted on
``(window, rule)``, incidents are maximal runs of consecutively-firing
evaluated windows, and sequence numbers are dense evaluation-order
indices.  The result is an :class:`AlertOutcome` whose canonical JSON,
event stream, and rendered digest are all byte-stable — alerts replay
and golden-test exactly like every other event in the registry.

A metric a rule references but the tsdb never recorded is reported in
``missing_metrics`` (and rendered as a warning), never raised: absence
of telemetry is a finding, not a crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ...analysis.bench import exceeds_ratio_gate
from ...analysis.rendering import ascii_table
from ...errors import ConfigurationError
from ..events import AlertEvent, IncidentEvent, ObsEvent, event_to_dict
from ..sinks import event_to_json_line
from ..tsdb.series import Tsdb
from .rules import SLO_KIND, AlertRule, SloTarget

#: Canonical alert-outcome document schema revision.
OUTCOME_SCHEMA = 1


@dataclass(frozen=True)
class RuleEvaluation:
    """Digest row: one rule's coverage and firing count."""

    name: str
    kind: str
    metric: str
    severity: str
    windows: int
    fired: int


@dataclass(frozen=True)
class _Firing:
    """One window that tripped a rule (pre-event intermediate)."""

    rule: str
    kind: str
    metric: str
    severity: str
    op: str
    window: int
    position: int  # index into the rule's evaluated-window list
    start_tick: float
    value: float
    threshold: float


@dataclass(frozen=True)
class AlertOutcome:
    """Everything one deterministic evaluation pass produced."""

    experiment: str
    seed: int
    window_ticks: float
    evaluations: tuple[RuleEvaluation, ...]
    events: tuple[ObsEvent, ...]
    missing_metrics: tuple[str, ...]
    skipped_lines: int

    @property
    def alerts(self) -> tuple[AlertEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, AlertEvent))

    @property
    def incidents(self) -> tuple[IncidentEvent, ...]:
        return tuple(e for e in self.events if isinstance(e, IncidentEvent))

    @property
    def fired(self) -> bool:
        return any(isinstance(e, AlertEvent) for e in self.events)

    def to_dict(self) -> dict:
        return {
            "kind": "alert_outcome",
            "schema": OUTCOME_SCHEMA,
            "experiment": self.experiment,
            "seed": self.seed,
            "window_ticks": self.window_ticks,
            "evaluations": [
                {
                    "name": ev.name,
                    "kind": ev.kind,
                    "metric": ev.metric,
                    "severity": ev.severity,
                    "windows": ev.windows,
                    "fired": ev.fired,
                }
                for ev in self.evaluations
            ],
            "events": [event_to_dict(event) for event in self.events],
            "missing_metrics": list(self.missing_metrics),
            "skipped_lines": self.skipped_lines,
        }

    def to_json(self) -> str:
        """Canonical JSON document (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write_events(self, path) -> Path:
        """Write the alert/incident events as a standard JSONL stream."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "".join(
                event_to_json_line(event) + "\n" for event in self.events
            ),
            encoding="utf-8",
        )
        return target

    def render(self) -> str:
        """Human digest: per-rule table, incident timeline, summary."""
        lines = [
            f"alert evaluation: {self.experiment}@s{self.seed}, "
            f"window {self.window_ticks:g} ticks"
        ]
        if self.evaluations:
            rows = [
                (ev.name, ev.kind, ev.metric, ev.severity, ev.windows, ev.fired)
                for ev in self.evaluations
            ]
            lines.append(
                ascii_table(
                    ("rule", "kind", "metric", "severity", "windows", "fired"),
                    rows,
                )
            )
        incidents = self.incidents
        if incidents:
            lines.append("incidents:")
            # Incident events come in adjacent (open, close) pairs.
            for opened, closed in zip(incidents[::2], incidents[1::2]):
                lines.append(
                    f"  {closed.rule} [{closed.severity}] "
                    f"{closed.metric}: windows "
                    f"{opened.window}..{closed.window} "
                    f"({closed.windows_active} active), worst "
                    f"{closed.worst_value:g} vs {closed.threshold:g}"
                )
        for metric in self.missing_metrics:
            lines.append(f"warning: no series for metric {metric!r}")
        if self.skipped_lines:
            lines.append(
                f"warning: {self.skipped_lines} truncated stream line(s) "
                "skipped during ingest"
            )
        lines.append(
            f"{len(self.alerts)} alert window(s), "
            f"{len(incidents) // 2} incident(s)"
        )
        return "\n".join(lines)


def _reduced(window: dict, reduce: str) -> float:
    return float(window[reduce])


def _trips(value: float, bound: float, op: str) -> bool:
    return value > bound if op == "above" else value < bound


def _nearest_rank(values, q):
    # Local import: analyze.__init__ pulls in core.fleet, which must be
    # importable before this module evaluates anything.
    from ..analyze.fleet_health import nearest_rank

    return nearest_rank(values, q)


def _rule_firings(
    rule: AlertRule, windows: list[dict]
) -> list[_Firing]:
    reduced = [_reduced(window, rule.reduce) for window in windows]
    bounds: list[float]
    if rule.kind == "threshold":
        bounds = [rule.threshold] * len(windows)
        fired = [_trips(value, rule.threshold, rule.op) for value in reduced]
    elif rule.kind == "ratio_vs_baseline":
        baseline = (
            rule.baseline if rule.baseline is not None else reduced[0]
        )
        if rule.op == "above":
            bounds = [baseline * rule.ratio] * len(windows)
            fired = [
                exceeds_ratio_gate(
                    value,
                    baseline,
                    threshold=rule.ratio,
                    min_delta=rule.min_delta,
                )
                for value in reduced
            ]
        else:
            bounds = [baseline / rule.ratio] * len(windows)
            fired = [
                exceeds_ratio_gate(
                    baseline,
                    value,
                    threshold=rule.ratio,
                    min_delta=rule.min_delta,
                )
                for value in reduced
            ]
    else:  # quantile_fence
        p10 = _nearest_rank(reduced, 0.10)
        p50 = _nearest_rank(reduced, 0.50)
        p90 = _nearest_rank(reduced, 0.90)
        if rule.op == "below":
            fence = p50 - rule.fence_k * max(p50 - p10, rule.min_delta)
        else:
            fence = p50 + rule.fence_k * max(p90 - p50, rule.min_delta)
        bounds = [fence] * len(windows)
        fired = [_trips(value, fence, rule.op) for value in reduced]
    return [
        _Firing(
            rule=rule.name,
            kind=rule.kind,
            metric=rule.metric,
            severity=rule.severity,
            op=rule.op,
            window=int(window["window"]),
            position=position,
            start_tick=float(window["start_tick"]),
            value=value,
            threshold=bound,
        )
        for position, (window, value, bound, hit) in enumerate(
            zip(windows, reduced, bounds, fired)
        )
        if hit
    ]


def _slo_firings(slo: SloTarget, windows: list[dict]) -> list[_Firing]:
    firings = []
    bad_windows = 0
    for position, window in enumerate(windows):
        value = _reduced(window, slo.reduce)
        if _trips(value, slo.threshold, slo.op):
            bad_windows += 1
        burn = (bad_windows / (position + 1)) / slo.objective
        if burn > slo.burn_threshold:
            firings.append(
                _Firing(
                    rule=slo.name,
                    kind=SLO_KIND,
                    metric=slo.metric,
                    severity=slo.severity,
                    op="above",
                    window=int(window["window"]),
                    position=position,
                    start_tick=float(window["start_tick"]),
                    value=burn,
                    threshold=slo.burn_threshold,
                )
            )
    return firings


def _incident_runs(firings: list[_Firing]) -> list[list[_Firing]]:
    """Maximal runs of consecutively-evaluated firing windows."""
    runs: list[list[_Firing]] = []
    for firing in sorted(firings, key=lambda f: f.position):
        if runs and firing.position == runs[-1][-1].position + 1:
            runs[-1].append(firing)
        else:
            runs.append([firing])
    return runs


def evaluate_rules(
    tsdb: Tsdb,
    rules=(),
    slos=(),
    *,
    skipped_lines: int = 0,
) -> AlertOutcome:
    """Evaluate alert rules and SLO targets over a tsdb.

    Pure and deterministic: the outcome (events, sequence numbers,
    canonical JSON) is a function of the inputs only.  ``skipped_lines``
    threads the tolerant-ingest warning count through to the digest.
    """
    rules = tuple(rules)
    slos = tuple(slos)
    names = [item.name for item in (*rules, *slos)]
    if len(names) != len(set(names)):
        raise ConfigurationError(
            "alert rules and SLO targets must have unique names"
        )
    if not rules and not slos:
        raise ConfigurationError("nothing to evaluate: no rules and no slos")

    evaluations = []
    all_firings: list[_Firing] = []
    incident_runs: list[list[_Firing]] = []
    missing: list[str] = []
    for item in sorted((*rules, *slos), key=lambda item: item.name):
        is_slo = isinstance(item, SloTarget)
        kind = SLO_KIND if is_slo else item.kind
        if item.metric not in tsdb:
            missing.append(item.metric)
            evaluations.append(
                RuleEvaluation(
                    name=item.name,
                    kind=kind,
                    metric=item.metric,
                    severity=item.severity,
                    windows=0,
                    fired=0,
                )
            )
            continue
        windows = tsdb.series(item.metric).windows()
        firings = (
            _slo_firings(item, windows)
            if is_slo
            else _rule_firings(item, windows)
        )
        evaluations.append(
            RuleEvaluation(
                name=item.name,
                kind=kind,
                metric=item.metric,
                severity=item.severity,
                windows=len(windows),
                fired=len(firings),
            )
        )
        all_firings.extend(firings)
        incident_runs.extend(_incident_runs(firings))

    events: list[ObsEvent] = []
    for firing in sorted(all_firings, key=lambda f: (f.window, f.rule)):
        events.append(
            AlertEvent(
                seq=len(events),
                rule=firing.rule,
                kind=firing.kind,
                metric=firing.metric,
                severity=firing.severity,
                window=firing.window,
                start_tick=firing.start_tick,
                value=firing.value,
                threshold=firing.threshold,
            )
        )
    for run in sorted(incident_runs, key=lambda r: (r[0].window, r[0].rule)):
        first = run[0]
        values = [firing.value for firing in run]
        worst = min(values) if first.op == "below" else max(values)
        for action, edge in (("open", first), ("close", run[-1])):
            events.append(
                IncidentEvent(
                    seq=len(events),
                    rule=edge.rule,
                    metric=edge.metric,
                    severity=edge.severity,
                    action=action,
                    window=edge.window,
                    windows_active=len(run),
                    worst_value=worst,
                    threshold=first.threshold,
                )
            )

    return AlertOutcome(
        experiment=tsdb.experiment,
        seed=tsdb.seed,
        window_ticks=tsdb.window_ticks,
        evaluations=tuple(evaluations),
        events=tuple(events),
        missing_metrics=tuple(sorted(set(missing))),
        skipped_lines=int(skipped_lines),
    )
