"""Deterministic alerting and SLO tracking (``repro.obs.alerts``).

The decide-half of the observability stack: declarative rules
(:mod:`~repro.obs.alerts.rules`) evaluated deterministically over tsdb
tick windows (:mod:`~repro.obs.alerts.engine`), emitting
``AlertEvent``/``IncidentEvent`` through the standard event registry so
firings are diffable, golden-testable, and replayable.
"""

from .engine import (
    OUTCOME_SCHEMA,
    AlertOutcome,
    RuleEvaluation,
    evaluate_rules,
)
from .rules import (
    OPS,
    REDUCERS,
    RULE_KINDS,
    RULE_PACK_SCHEMA,
    SEVERITIES,
    SLO_KIND,
    SLO_PACK_SCHEMA,
    AlertRule,
    SloTarget,
    default_rule_pack,
    load_rule_pack,
    load_slo_pack,
)

__all__ = [
    "OPS",
    "OUTCOME_SCHEMA",
    "REDUCERS",
    "RULE_KINDS",
    "RULE_PACK_SCHEMA",
    "SEVERITIES",
    "SLO_KIND",
    "SLO_PACK_SCHEMA",
    "AlertOutcome",
    "AlertRule",
    "RuleEvaluation",
    "SloTarget",
    "default_rule_pack",
    "evaluate_rules",
    "load_rule_pack",
    "load_slo_pack",
]
