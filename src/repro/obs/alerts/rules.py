"""Declarative alert and SLO rule definitions.

The control-plane vocabulary of the alerting layer: frozen
:class:`AlertRule` / :class:`SloTarget` dataclasses, JSON pack loaders,
and the default rule pack the CLI ships.  Four rule kinds mirror the
monitors the paper's management story needs (runtime monitor → guardband
violation → rollback, Fig. 11; fleet health under a power budget, §VII):

``threshold``
    A reduced window value crosses a fixed bound.
``ratio_vs_baseline``
    A reduced window value drifts past ``ratio ×`` a baseline (explicit,
    or the run's first window), through the shared
    :func:`~repro.analysis.bench.exceeds_ratio_gate` predicate.
``quantile_fence``
    A reduced window value escapes the same nearest-rank p10/p50/p90
    fences :mod:`~repro.obs.analyze.fleet_health` draws around a fleet.
``slo_burn_rate``
    (:class:`SloTarget`) the cumulative fraction of objective-violating
    windows burns the error budget faster than ``burn_threshold``.

Every metric name is validated through the same
:func:`~repro.lint.rules.alert_hygiene.metric_name_problems` predicate
RL013 applies to literal definitions, so JSON packs cannot smuggle in
unsuffixed or wall-clock metrics the linter would reject in source.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from pathlib import Path

from ...errors import ConfigurationError
from ...lint.rules.alert_hygiene import metric_name_problems
from ..analyze.fleet_health import DEFAULT_FENCE_K
from ..tsdb.series import validate_metric_name

RULE_PACK_SCHEMA = "alert_rules/v1"
SLO_PACK_SCHEMA = "slo/v1"

#: Alert-rule kinds (SLO burn-rate is spelled as a :class:`SloTarget`).
RULE_KINDS = ("threshold", "ratio_vs_baseline", "quantile_fence")

#: Per-window reducers; each is a key of ``MetricTimeSeries.windows()``.
REDUCERS = ("mean", "min", "max", "count", "sum")

OPS = ("above", "below")
SEVERITIES = ("info", "warning", "critical")

#: The kind stamped on SLO burn-rate firings.
SLO_KIND = "slo_burn_rate"


def _check_metric(metric: str) -> str:
    validate_metric_name(metric)
    problems = metric_name_problems(metric)
    if problems:
        raise ConfigurationError(
            f"metric {metric!r} fails alert hygiene (RL013): "
            + "; ".join(problems)
        )
    return metric


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name or "\n" in name:
        raise ConfigurationError(f"invalid rule name {name!r}")
    return name


def _check_finite(label: str, value: float) -> float:
    if not math.isfinite(value):
        raise ConfigurationError(f"{label} must be finite, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class AlertRule:
    """One deterministic predicate over a metric's tick windows."""

    name: str
    kind: str
    metric: str
    reduce: str = "mean"
    op: str = "above"
    threshold: float = 0.0
    ratio: float = 2.0
    baseline: float | None = None
    min_delta: float = 0.0
    fence_k: float = DEFAULT_FENCE_K
    severity: str = "warning"

    def __post_init__(self):
        _check_name(self.name)
        if self.kind not in RULE_KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(RULE_KINDS)})"
            )
        _check_metric(self.metric)
        if self.reduce not in REDUCERS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown reducer {self.reduce!r} "
                f"(expected one of {', '.join(REDUCERS)})"
            )
        if self.op not in OPS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown op {self.op!r}"
            )
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown severity {self.severity!r}"
            )
        _check_finite(f"rule {self.name!r}: threshold", self.threshold)
        if self.baseline is not None:
            _check_finite(f"rule {self.name!r}: baseline", self.baseline)
        if self.kind == "ratio_vs_baseline" and self.ratio <= 1.0:
            raise ConfigurationError(
                f"rule {self.name!r}: ratio must be > 1, got {self.ratio}"
            )
        if self.min_delta < 0.0:
            raise ConfigurationError(
                f"rule {self.name!r}: min_delta must be >= 0, "
                f"got {self.min_delta}"
            )
        if self.fence_k <= 0.0:
            raise ConfigurationError(
                f"rule {self.name!r}: fence_k must be > 0, got {self.fence_k}"
            )

    def describe(self) -> str:
        """Human-readable predicate, for ``repro obs alerts list``."""
        value = f"{self.reduce}({self.metric})"
        if self.kind == "threshold":
            return f"{value} {self.op} {self.threshold}"
        if self.kind == "ratio_vs_baseline":
            base = (
                "first window"
                if self.baseline is None
                else f"baseline {self.baseline}"
            )
            return f"{value} {self.op} {self.ratio}x {base}"
        return f"{value} {self.op} {self.fence_k}-sigma quantile fence"

    def to_dict(self) -> dict:
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    @classmethod
    def from_dict(cls, document: dict) -> AlertRule:
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigurationError(
                f"alert rule document has unknown key(s): {', '.join(unknown)}"
            )
        return cls(**document)


@dataclass(frozen=True)
class SloTarget:
    """An error-budget objective over a metric's tick windows.

    A window is *bad* when its reduced value is ``op`` ``threshold``;
    the budget burn after the k-th window is
    ``(bad_windows / k) / objective``, and the target fires whenever the
    burn exceeds ``burn_threshold`` (1.0 = burning exactly at budget).
    """

    name: str
    metric: str
    threshold: float
    reduce: str = "mean"
    op: str = "above"
    objective: float = 0.01
    burn_threshold: float = 1.0
    severity: str = "critical"

    def __post_init__(self):
        _check_name(self.name)
        _check_metric(self.metric)
        if self.reduce not in REDUCERS:
            raise ConfigurationError(
                f"slo {self.name!r}: unknown reducer {self.reduce!r}"
            )
        if self.op not in OPS:
            raise ConfigurationError(
                f"slo {self.name!r}: unknown op {self.op!r}"
            )
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"slo {self.name!r}: unknown severity {self.severity!r}"
            )
        _check_finite(f"slo {self.name!r}: threshold", self.threshold)
        if not 0.0 < self.objective <= 1.0:
            raise ConfigurationError(
                f"slo {self.name!r}: objective must be in (0, 1], "
                f"got {self.objective}"
            )
        if self.burn_threshold <= 0.0:
            raise ConfigurationError(
                f"slo {self.name!r}: burn_threshold must be > 0, "
                f"got {self.burn_threshold}"
            )

    def describe(self) -> str:
        return (
            f"bad window: {self.reduce}({self.metric}) {self.op} "
            f"{self.threshold}; budget {self.objective:g}, "
            f"burn limit {self.burn_threshold:g}x"
        )

    def to_dict(self) -> dict:
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    @classmethod
    def from_dict(cls, document: dict) -> SloTarget:
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigurationError(
                f"slo document has unknown key(s): {', '.join(unknown)}"
            )
        return cls(**document)


def _load_pack(path, schema: str, key: str) -> list[dict]:
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"unreadable rule pack {source}: {error}"
        ) from error
    if document.get("schema") != schema:
        raise ConfigurationError(
            f"{source}: expected schema {schema!r}, "
            f"got {document.get('schema')!r}"
        )
    entries = document.get(key)
    if not isinstance(entries, list):
        raise ConfigurationError(f"{source}: missing {key!r} list")
    return entries


def _check_unique_names(items) -> None:
    seen = set()
    for item in items:
        if item.name in seen:
            raise ConfigurationError(f"duplicate rule name {item.name!r}")
        seen.add(item.name)


def load_rule_pack(path) -> tuple[AlertRule, ...]:
    """Load an ``alert_rules/v1`` JSON pack."""
    rules = tuple(
        AlertRule.from_dict(entry)
        for entry in _load_pack(path, RULE_PACK_SCHEMA, "rules")
    )
    _check_unique_names(rules)
    return rules


def load_slo_pack(path) -> tuple[SloTarget, ...]:
    """Load an ``slo/v1`` JSON pack."""
    slos = tuple(
        SloTarget.from_dict(entry)
        for entry in _load_pack(path, SLO_PACK_SCHEMA, "slos")
    )
    _check_unique_names(slos)
    return slos


def default_rule_pack() -> tuple[AlertRule, ...]:
    """The shipped fleet-characterization rule pack.

    Fences a healthy seeded fleet from the paper's side: tuned chips must
    stay above the slow-silicon floor, never tune below baseline, and
    stress-test rollbacks must stay shallow.  Thresholds carry wide
    margins so the self-clean CI smoke (zero firings on a seeded run)
    holds on any healthy configuration.
    """
    return (
        AlertRule(
            name="fleet-tuned-floor",
            kind="threshold",
            metric="fleet.tuned_slowest_mhz",
            reduce="min",
            op="below",
            threshold=3600.0,
            severity="critical",
        ),
        AlertRule(
            name="fleet-tuning-loss",
            kind="threshold",
            metric="fleet.tuning_gain_mhz",
            reduce="min",
            op="below",
            # The tuned slowest core can dip ~1 MHz below baseline on a
            # healthy chip (per-core trade-offs); -25 MHz is a real loss.
            threshold=-25.0,
            severity="critical",
        ),
        AlertRule(
            name="fleet-rollback-burst",
            kind="threshold",
            metric="fleet.ubench_rollback_steps",
            reduce="max",
            op="above",
            threshold=12.0,
            severity="warning",
        ),
        AlertRule(
            name="fleet-probe-cost-drift",
            kind="ratio_vs_baseline",
            metric="fleet.probe_runs",
            reduce="mean",
            op="above",
            ratio=3.0,
            min_delta=8.0,
            severity="warning",
        ),
        AlertRule(
            name="fleet-slow-outlier",
            kind="quantile_fence",
            metric="fleet.tuned_slowest_mhz",
            reduce="min",
            op="below",
            fence_k=4.0,
            min_delta=40.0,
            severity="info",
        ),
    )
