"""Deterministic observability: metrics, tracing, events, run manifests.

The subsystem watches the closed loops this reproduction is about — CPM
delay-reduction steps, DPLL guardband violations, per-<app, core>
rollbacks, field drift alerts — without ever perturbing them: all
ordering comes from a monotonic event sequence ("simulated ticks"), never
the host clock.  See OBSERVABILITY.md for the event taxonomy, sink wiring,
and manifest schema.

Layering: ``columnar`` (storage) ← ``metrics`` / ``events`` / ``sinks`` /
``trace`` ← ``runtime`` (installable context) ← ``manifest`` /
``selfcheck``.  The single wall-clock exemption lives in ``profiling``.
"""

from .columnar import TraceRecorder
from .events import (
    EVENT_TYPES,
    AlertEvent,
    CpmStepEvent,
    DriftAlertEvent,
    GuardbandViolationEvent,
    IncidentEvent,
    ObsEvent,
    RollbackEvent,
    SpanEvent,
    event_from_dict,
    event_to_dict,
)
from .manifest import (
    RunManifest,
    build_manifest,
    load_manifest,
    save_manifest,
    testbed_limits_fingerprint,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_summary_table,
)
from .runtime import Observability, get_obs, install, observed
from .selfcheck import run_selfcheck
from .sinks import (
    EventSink,
    JsonlFileSink,
    RingBufferSink,
    TeeSink,
    read_jsonl,
)
from .trace import Span, Tracer

__all__ = [
    "TraceRecorder",
    "ObsEvent",
    "CpmStepEvent",
    "GuardbandViolationEvent",
    "RollbackEvent",
    "DriftAlertEvent",
    "SpanEvent",
    "AlertEvent",
    "IncidentEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "EventSink",
    "RingBufferSink",
    "JsonlFileSink",
    "TeeSink",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_summary_table",
    "Span",
    "Tracer",
    "Observability",
    "get_obs",
    "install",
    "observed",
    "RunManifest",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "testbed_limits_fingerprint",
    "run_selfcheck",
]
