"""Opt-in wall-clock profiling for the *harness* — the sole RL002 exemption.

Everything else in ``src/repro/`` measures time in simulated units; lint
rule RL002 enforces that.  This module is the one clearly-marked place
allowed to read the host clock, and it exists exclusively so the
experiment harness can answer questions about *itself* — "how long does
``repro experiment all`` spend per experiment?", "what is the overhead of
enabled metrics?" — which are questions about the Python process, not the
simulated POWER7+ server.

Rules of use (also documented in OBSERVABILITY.md):

* no module under ``src/repro/`` may read the host clock except through
  this module;
* nothing returned from here may flow into simulation state, event
  payloads destined for deterministic JSONL streams, or run manifests —
  wall-clock readings are for operator-facing summaries only.

The inline ``repro-lint: disable=RL002`` suppressions below are the
exemption; ``repro lint`` keeps flagging host-clock reads anywhere else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


def wall_clock_s() -> float:
    """Monotonic wall-clock seconds (harness profiling only)."""
    return time.perf_counter()  # repro-lint: disable=RL002


def wall_clock_tick_source() -> float:
    """Tick source for :class:`repro.obs.trace.Tracer` profiling mode.

    Alias of :func:`wall_clock_s` under the name the tracer documents, so
    call sites read ``Tracer(wall_source=wall_clock_tick_source)``.
    """
    return wall_clock_s()


@contextmanager
def stopwatch():
    """Measure a block's wall-clock duration.

    Yields a zero-argument callable that returns the seconds elapsed since
    the block was entered (callable both inside and after the block)::

        with stopwatch() as elapsed_s:
            run_experiment(...)
        print(f"{elapsed_s():.2f}s")
    """
    start_s = wall_clock_s()
    yield lambda: wall_clock_s() - start_s
