"""Prometheus/OpenMetrics text exposition of summaries and tsdb series.

:func:`render_openmetrics` turns a metrics summary and/or a
:class:`~repro.obs.tsdb.series.Tsdb` into the OpenMetrics text format —
``# TYPE`` metadata lines, one sample per line, ``# EOF`` terminator —
so any Prometheus-compatible scraper or ``promtool`` can consume a run's
telemetry.  The page is a pure function of its inputs (sorted metric
names, sorted labels, ``repr``-round-trippable float rendering), so the
determinism contract extends to the exposition layer: same seed ⇒
byte-identical pages.

:func:`parse_openmetrics` is the matching reader, used by the round-trip
gate in ``tools/check.sh``.
"""

from __future__ import annotations

import re

from ...errors import ConfigurationError
from .series import Tsdb

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r"\\(.)")

#: Summary-entry stats exposed per instrument kind.
_GAUGE_STATS = ("samples", "min", "max", "mean", "p50", "p95", "p99")
_HISTOGRAM_STATS = ("count", "mean", "p50", "p95", "p99")
_WINDOW_STATS = ("count", "min", "max", "mean", "sum")


def openmetrics_name(metric: str) -> str:
    """Map a dotted metric name onto the OpenMetrics name grammar."""
    name = _NAME_SANITIZE_RE.sub("_", metric)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _value_text(value) -> str:
    # repr() of a float round-trips exactly through float(), keeping the
    # page diffable *and* parseable without precision loss.
    return repr(float(value))


def render_openmetrics(
    *, summary: dict | None = None, tsdb: Tsdb | None = None, labels=None
) -> str:
    """Render a metrics summary and/or tsdb as an OpenMetrics text page.

    Summary counters become ``<name>_total`` counter families; summary
    gauges/histograms become ``stat``-labeled gauge families.  Tsdb
    series become ``<name>_window`` gauge families with ``window`` and
    ``stat`` labels, so per-window and whole-run views never collide.
    """
    base = dict(labels or {})
    lines: list[str] = []
    for name in sorted(summary or ()):
        entry = summary[name]
        kind = entry.get("kind")
        exposed = openmetrics_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {exposed} counter")
            lines.append(
                f"{exposed}_total{_labels_text(base)} "
                f"{_value_text(entry['value'])}"
            )
        elif kind == "gauge":
            lines.append(f"# TYPE {exposed} gauge")
            for stat in _GAUGE_STATS:
                if stat in entry:
                    lines.append(
                        f"{exposed}{_labels_text({**base, 'stat': stat})} "
                        f"{_value_text(entry[stat])}"
                    )
        elif kind == "histogram":
            lines.append(f"# TYPE {exposed} gauge")
            for stat in _HISTOGRAM_STATS:
                if stat in entry:
                    lines.append(
                        f"{exposed}{_labels_text({**base, 'stat': stat})} "
                        f"{_value_text(entry[stat])}"
                    )
        else:
            raise ConfigurationError(
                f"summary entry {name!r} has unknown kind {kind!r}"
            )
    if tsdb is not None:
        for metric in tsdb.metrics():
            exposed = openmetrics_name(metric) + "_window"
            lines.append(f"# TYPE {exposed} gauge")
            for window in tsdb.series(metric).windows():
                window_label = str(int(window["window"]))
                for stat in _WINDOW_STATS:
                    window_labels = {
                        **base,
                        "window": window_label,
                        "stat": stat,
                    }
                    lines.append(
                        f"{exposed}{_labels_text(window_labels)} "
                        f"{_value_text(window[stat])}"
                    )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _unescape_label(raw: str) -> str:
    return _UNESCAPE_RE.sub(
        lambda match: {"n": "\n"}.get(match.group(1), match.group(1)), raw
    )


def parse_openmetrics(text: str) -> dict:
    """Parse an OpenMetrics text page.

    Returns ``{"types": {family: type}, "samples": [{"name", "labels",
    "value"}, ...]}``.  Raises :class:`ConfigurationError` on malformed
    sample lines, unparseable values, content after the terminator, or a
    missing ``# EOF``.
    """
    types: dict[str, str] = {}
    samples: list[dict] = []
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            raise ConfigurationError(
                f"line {lineno}: content after the # EOF terminator"
            )
        if line.strip() == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ConfigurationError(
                    f"line {lineno}: malformed TYPE line {line!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ConfigurationError(
                f"line {lineno}: malformed sample line {line!r}"
            )
        labels = {
            key: _unescape_label(raw)
            for key, raw in _LABEL_RE.findall(match.group("labels") or "")
        }
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ConfigurationError(
                f"line {lineno}: unparseable sample value "
                f"{match.group('value')!r}"
            ) from error
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    if not saw_eof:
        raise ConfigurationError("page is missing the # EOF terminator")
    return {"types": types, "samples": samples}
