"""Append-only on-disk store of canonical tsdb series files.

Layout::

    <root>/<experiment>@s<seed>/<metric>.series.json

One file per ``(experiment, seed, metric)``, holding the windowed
aggregator state as canonical JSON (sorted keys, two-space indent,
trailing newline).  Writes are merge-on-write: an existing file is
loaded, the new samples are folded in with the order-invariant series
merge, and the union is rewritten.  Appending is therefore idempotent at
the sample-multiset level and commutes across writers — pool workers,
chunked runs, and repeated serial runs over the same samples all
converge to byte-identical files, which is what the alert layer's golden
tests pin.
"""

from __future__ import annotations

import json
from pathlib import Path

from ...errors import ConfigurationError
from .series import TSDB_SCHEMA, MetricTimeSeries, Tsdb, validate_metric_name

#: Filename suffix of every series document in a store.
SERIES_SUFFIX = ".series.json"


def _canonical_json(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


class TsdbStore:
    """Directory of per-metric series files, merged on write."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def run_dir(self, experiment: str, seed: int) -> Path:
        return self.root / f"{experiment}@s{int(seed)}"

    def series_path(self, experiment: str, seed: int, metric: str) -> Path:
        return self.run_dir(experiment, seed) / (
            validate_metric_name(metric) + SERIES_SUFFIX
        )

    def write(self, tsdb: Tsdb) -> list[Path]:
        """Fold ``tsdb`` into the store; returns the paths rewritten."""
        run_dir = self.run_dir(tsdb.experiment, tsdb.seed)
        run_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for metric in tsdb.metrics():
            merged = MetricTimeSeries.from_state(tsdb.series(metric).to_state())
            path = run_dir / (metric + SERIES_SUFFIX)
            if path.exists():
                merged.merge(
                    self._read_series(path, tsdb.experiment, tsdb.seed, metric)
                )
            document = {
                "kind": "tsdb_series",
                "schema": TSDB_SCHEMA,
                "experiment": tsdb.experiment,
                "seed": tsdb.seed,
                "metric": metric,
                "window_ticks": merged.window_ticks,
                "aggregator": merged.to_state()["aggregator"],
            }
            path.write_text(_canonical_json(document), encoding="utf-8")
            paths.append(path)
        return paths

    def _read_series(
        self, path: Path, experiment: str, seed: int, metric: str
    ) -> MetricTimeSeries:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"unreadable tsdb series file {path}: {error}"
            ) from error
        if (
            document.get("kind") != "tsdb_series"
            or document.get("schema") != TSDB_SCHEMA
        ):
            raise ConfigurationError(
                f"{path} is not a schema-{TSDB_SCHEMA} tsdb series document"
            )
        if (
            document.get("experiment") != experiment
            or int(document.get("seed", -1)) != int(seed)
            or document.get("metric") != metric
        ):
            raise ConfigurationError(
                f"{path} header does not match its store location "
                f"({experiment}@s{seed}/{metric})"
            )
        return MetricTimeSeries.from_state(
            {"metric": metric, "aggregator": document["aggregator"]}
        )

    def load_series(
        self, experiment: str, seed: int, metric: str
    ) -> MetricTimeSeries:
        """One persisted series; raises if absent."""
        path = self.series_path(experiment, seed, metric)
        if not path.exists():
            raise ConfigurationError(
                f"no persisted series for {experiment}@s{seed}/{metric} "
                f"under {self.root}"
            )
        return self._read_series(path, experiment, seed, metric)

    def metrics(self, experiment: str, seed: int) -> tuple[str, ...]:
        """Persisted metric names for one run, sorted."""
        run_dir = self.run_dir(experiment, seed)
        if not run_dir.is_dir():
            return ()
        return tuple(
            sorted(
                path.name[: -len(SERIES_SUFFIX)]
                for path in run_dir.iterdir()
                if path.name.endswith(SERIES_SUFFIX)
            )
        )

    def load_run(self, experiment: str, seed: int) -> Tsdb:
        """Rebuild a :class:`Tsdb` from every persisted series of a run."""
        names = self.metrics(experiment, seed)
        if not names:
            raise ConfigurationError(
                f"no persisted series for {experiment}@s{seed} under "
                f"{self.root}"
            )
        series = [self.load_series(experiment, seed, name) for name in names]
        tsdb = Tsdb(experiment, seed, window_ticks=series[0].window_ticks)
        state = tsdb.to_state()
        for one in series:
            state["series"][one.metric] = one.to_state()["aggregator"]
        return Tsdb.from_state(state)

    def runs(self) -> list[tuple[str, int]]:
        """Every ``(experiment, seed)`` with persisted series, sorted."""
        out = []
        for path in self.root.iterdir():
            if not path.is_dir() or "@s" not in path.name:
                continue
            experiment, _, seed_text = path.name.rpartition("@s")
            if experiment and seed_text.isdigit():
                out.append((experiment, int(seed_text)))
        return sorted(out)
