"""Persistent per-metric time-series layer (``repro.obs.tsdb``).

The storage half of the alerting stack: windowed, order-invariant,
canonically serialized metric series keyed on
``(experiment, seed, metric, tick-window)``.  See the module docstrings
of :mod:`~repro.obs.tsdb.series` (in-memory model),
:mod:`~repro.obs.tsdb.store` (on-disk layout),
:mod:`~repro.obs.tsdb.capture` (ingest paths), and
:mod:`~repro.obs.tsdb.openmetrics` (Prometheus-compatible exposition).
"""

from .capture import (
    capture_documents,
    capture_registry,
    capture_stream,
    capture_summary,
)
from .openmetrics import (
    openmetrics_name,
    parse_openmetrics,
    render_openmetrics,
)
from .series import (
    DEFAULT_WINDOW_TICKS,
    TSDB_SCHEMA,
    MetricTimeSeries,
    Tsdb,
    validate_metric_name,
)
from .store import SERIES_SUFFIX, TsdbStore

__all__ = [
    "DEFAULT_WINDOW_TICKS",
    "SERIES_SUFFIX",
    "TSDB_SCHEMA",
    "MetricTimeSeries",
    "Tsdb",
    "TsdbStore",
    "capture_documents",
    "capture_registry",
    "capture_stream",
    "capture_summary",
    "openmetrics_name",
    "parse_openmetrics",
    "render_openmetrics",
    "validate_metric_name",
]
