"""Feeding a tsdb: registry snapshots, event documents, JSONL streams.

Three ingest paths, all deterministic:

* :func:`capture_registry` — the live path.  Exact-mode gauges
  contribute their full ``(tick, value)`` history; counters, streaming
  gauges, and histograms contribute one headline sample at tick 0.
* :func:`capture_documents` / :func:`capture_stream` — the replay path.
  Event documents become per-type occurrence series (``events.<Type>``)
  plus value series for the numeric fields worth alerting on (CPM slack,
  guardband deficit, drift residual, rollback depth), ticked on the
  event's ``seq``.
* :func:`capture_summary` — the manifest path, for runs where only the
  metrics summary survived.

:func:`capture_stream` reads through the tolerant JSONL loader, so a
truncated final segment of a rotated stream is a *counted* warning
(returned as ``skipped``), never a crash.
"""

from __future__ import annotations

from pathlib import Path

from ..sinks import read_jsonl_documents
from .series import Tsdb

#: Prefix of the per-event-type occurrence series.
EVENT_METRIC_PREFIX = "events."

#: Numeric event fields folded into value series, per event type.
EVENT_VALUE_METRICS = {
    "CpmStepEvent": (("slack_ps", "cpm.slack_ps"),),
    "GuardbandViolationEvent": (("deficit_ps", "guardband.deficit_ps"),),
    "DriftAlertEvent": (("mean_residual_mhz", "drift.residual_mhz"),),
}


def capture_registry(tsdb: Tsdb, registry) -> int:
    """Fold a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in.

    Returns the number of samples recorded.  Execution-scoped
    instruments are excluded the same way ``to_summary`` excludes them.
    """
    # Imported lazily: analyze pulls in fleet_health -> core.fleet, which
    # itself imports this package; a module-level import would cycle.
    from ..analyze.history import headline_value

    summary = registry.to_summary()
    instruments = registry.to_state()["instruments"]
    recorded = 0
    for name in sorted(summary):
        state = instruments[name]
        if state.get("kind") == "gauge" and state.get("mode") == "exact":
            for tick, value in state["samples"]:
                tsdb.record(name, float(tick), float(value))
                recorded += 1
            continue
        value = headline_value(summary[name])
        if value is not None:
            tsdb.record(name, 0.0, value)
            recorded += 1
    return recorded


def capture_summary(tsdb: Tsdb, metrics_summary: dict) -> int:
    """Fold a manifest's metrics summary in (one headline sample each)."""
    from ..analyze.history import headline_value

    recorded = 0
    for name in sorted(metrics_summary):
        value = headline_value(metrics_summary[name])
        if value is not None:
            tsdb.record(name, 0.0, value)
            recorded += 1
    return recorded


def capture_documents(tsdb: Tsdb, documents) -> int:
    """Fold raw event documents in; returns the number of samples."""
    recorded = 0
    for document in documents:
        type_name = document.get("type")
        if not isinstance(type_name, str) or not type_name:
            continue
        tick = float(document.get("seq", 0))
        tsdb.record(EVENT_METRIC_PREFIX + type_name, tick, 1.0)
        recorded += 1
        for field_name, metric in EVENT_VALUE_METRICS.get(type_name, ()):
            value = document.get(field_name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                tsdb.record(metric, tick, float(value))
                recorded += 1
        if type_name == "RollbackEvent":
            from_steps = document.get("from_steps")
            to_steps = document.get("to_steps")
            if isinstance(from_steps, int) and isinstance(to_steps, int):
                tsdb.record(
                    "rollback.depth_steps", tick, float(from_steps - to_steps)
                )
                recorded += 1
    return recorded


def capture_stream(tsdb: Tsdb, path: str | Path) -> tuple[int, int]:
    """Fold a JSONL event stream (plain or segmented) in.

    Returns ``(recorded_samples, skipped_lines)``; a truncated final
    line/segment is counted in ``skipped_lines`` rather than raising.
    """
    documents, skipped = read_jsonl_documents(path, tolerant=True)
    return capture_documents(tsdb, documents), skipped
