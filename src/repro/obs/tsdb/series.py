"""Per-metric time series keyed on ``(experiment, seed, metric, window)``.

The write-side substrate of the alerting layer: a :class:`Tsdb` holds one
:class:`MetricTimeSeries` per metric for a single ``(experiment, seed)``
run, each series folding ``(tick, value)`` samples into fixed tick
windows via :class:`~repro.obs.stream.window.WindowedAggregator`.  Ticks
are simulated sequence numbers (event ``seq``, global chip index), never
host time, so the whole structure inherits the repo's determinism
contract: same seed ⇒ identical state, and therefore byte-identical
serialized series (see :mod:`repro.obs.tsdb.store`).

Merging is order-invariant all the way down — window indices are exact
integers and per-window stats are error-free folds — so partial tsdbs
built by ``--jobs N`` pool workers over arbitrary chunkings combine into
exactly the state a serial run produces.  That property is what lets
alert evaluation (:mod:`repro.obs.alerts`) be golden-tested across the
serial/chunked/pooled matrix.
"""

from __future__ import annotations

import re

from ...errors import ConfigurationError
from ..stream.window import WindowedAggregator

#: Serialized tsdb/series document schema revision.
TSDB_SCHEMA = 1

#: Default tick-window width.  Chip-indexed fleet metrics land 64 chips
#: per window; event-seq'd run metrics land 64 events per window.
DEFAULT_WINDOW_TICKS = 64.0

_METRIC_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*$")


def validate_metric_name(metric: str) -> str:
    """Check a metric name is dotted-identifier shaped; return it.

    Names double as store filenames (``<metric>.series.json``), so the
    grammar is deliberately narrow: dot-separated ``[A-Za-z0-9_]`` words.
    """
    if not isinstance(metric, str) or not _METRIC_NAME_RE.match(metric):
        raise ConfigurationError(
            f"invalid metric name {metric!r}: expected dot-separated "
            "identifier words, e.g. 'fleet.tuned_slowest_mhz'"
        )
    return metric


class MetricTimeSeries:
    """Every sample of one metric, folded into fixed tick windows."""

    __slots__ = ("metric", "_aggregator")

    def __init__(self, metric: str, *, window_ticks: float = DEFAULT_WINDOW_TICKS):
        self.metric = validate_metric_name(metric)
        self._aggregator = WindowedAggregator(window_ticks)

    @property
    def window_ticks(self) -> float:
        return self._aggregator.window_ticks

    @property
    def window_count(self) -> int:
        return self._aggregator.window_count

    @property
    def sample_count(self) -> int:
        return sum(int(entry["count"]) for entry in self._aggregator.series())

    def add(self, tick: float, value: float) -> None:
        """Fold one sample into its tick window."""
        self._aggregator.add(tick, value)

    def merge(self, other: MetricTimeSeries) -> None:
        """Fold another series for the *same* metric in."""
        if other.metric != self.metric:
            raise ConfigurationError(
                f"cannot merge series {other.metric!r} into {self.metric!r}"
            )
        self._aggregator.merge(other._aggregator)

    def windows(self) -> list[dict[str, float]]:
        """Per-window reductions in tick order.

        Each entry carries ``window``/``start_tick`` plus every reducer
        the alert engine understands: ``count``/``min``/``max``/``mean``
        and the exact ``sum``.
        """
        out = []
        for entry in self._aggregator.series():
            stat = self._aggregator.window(int(entry["window"]))
            out.append({**entry, "sum": stat.total})
        return out

    def to_state(self) -> dict:
        """Canonical JSON-native state."""
        return {
            "metric": self.metric,
            "aggregator": self._aggregator.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> MetricTimeSeries:
        aggregator = WindowedAggregator.from_state(state["aggregator"])
        out = cls(str(state["metric"]), window_ticks=aggregator.window_ticks)
        out._aggregator = aggregator
        return out


class Tsdb:
    """All metric series of one ``(experiment, seed)`` run.

    An in-memory accumulator: :meth:`record` during the run, then either
    persist through :class:`~repro.obs.tsdb.store.TsdbStore` or evaluate
    alert rules over it directly.  Pool workers build private instances
    and the parent folds their :meth:`to_state` snapshots back in with
    :meth:`merge_state`.
    """

    __slots__ = ("experiment", "seed", "_window_ticks", "_series")

    def __init__(
        self,
        experiment: str,
        seed: int,
        *,
        window_ticks: float = DEFAULT_WINDOW_TICKS,
    ):
        if not experiment or "\n" in experiment or "/" in experiment:
            raise ConfigurationError(
                f"invalid experiment id {experiment!r} for a tsdb"
            )
        if window_ticks <= 0.0:
            raise ConfigurationError(
                f"window width must be > 0 ticks, got {window_ticks}"
            )
        self.experiment = experiment
        self.seed = int(seed)
        self._window_ticks = float(window_ticks)
        self._series: dict[str, MetricTimeSeries] = {}

    @property
    def window_ticks(self) -> float:
        return self._window_ticks

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, metric: str) -> bool:
        return metric in self._series

    def record(self, metric: str, tick: float, value: float) -> None:
        """Fold one sample of ``metric`` into its tick window."""
        series = self._series.get(metric)
        if series is None:
            series = self._series[metric] = MetricTimeSeries(
                metric, window_ticks=self._window_ticks
            )
        series.add(tick, value)

    def metrics(self) -> tuple[str, ...]:
        """Every recorded metric name, sorted."""
        return tuple(sorted(self._series))

    def series(self, metric: str) -> MetricTimeSeries:
        """The series for ``metric``; raises if never recorded."""
        series = self._series.get(metric)
        if series is None:
            raise ConfigurationError(
                f"no series for metric {metric!r} in "
                f"{self.experiment}@s{self.seed}"
            )
        return series

    def _check_mergeable(self, other: Tsdb) -> None:
        if (
            other.experiment != self.experiment
            or other.seed != self.seed
            or other._window_ticks != self._window_ticks  # repro-lint: disable=RL005
        ):
            # Exact config equality is the contract (same literals or no
            # merge), mirroring WindowedAggregator.merge.
            raise ConfigurationError(
                f"cannot merge tsdb {other.experiment}@s{other.seed} "
                f"(window {other._window_ticks}) into "
                f"{self.experiment}@s{self.seed} (window {self._window_ticks})"
            )

    def merge(self, other: Tsdb) -> None:
        """Fold another tsdb for the same run in (order-invariant)."""
        self._check_mergeable(other)
        for metric, series in other._series.items():
            mine = self._series.get(metric)
            if mine is None:
                self._series[metric] = MetricTimeSeries.from_state(
                    series.to_state()
                )
            else:
                mine.merge(series)

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`to_state` snapshot in (pool-worker fold path)."""
        self.merge(Tsdb.from_state(state))

    def to_state(self) -> dict:
        """Canonical JSON-native state (series sorted by metric)."""
        return {
            "kind": "tsdb",
            "schema": TSDB_SCHEMA,
            "experiment": self.experiment,
            "seed": self.seed,
            "window_ticks": self._window_ticks,
            "series": {
                metric: self._series[metric].to_state()["aggregator"]
                for metric in sorted(self._series)
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> Tsdb:
        if state.get("kind") != "tsdb" or state.get("schema") != TSDB_SCHEMA:
            raise ConfigurationError(
                f"not a schema-{TSDB_SCHEMA} tsdb state: "
                f"kind={state.get('kind')!r} schema={state.get('schema')!r}"
            )
        out = cls(
            str(state["experiment"]),
            int(state["seed"]),
            window_ticks=float(state["window_ticks"]),
        )
        for metric, aggregator_state in state["series"].items():
            out._series[metric] = MetricTimeSeries.from_state(
                {"metric": metric, "aggregator": aggregator_state}
            )
        return out
