"""Typed structured events emitted by the simulators and the harness.

Every event is a frozen dataclass with flat, JSON-native fields, so the
JSONL sink round-trips events losslessly: ``event_from_dict(event_to_dict(e))
== e`` for every type registered in :data:`EVENT_TYPES`.

The ``seq`` field is assigned by the :class:`repro.obs.runtime.Observability`
context at emission time and is the subsystem's monotonic simulated tick:
it orders events deterministically without ever reading the host clock.

Event taxonomy (see OBSERVABILITY.md for the full schema):

``CpmStepEvent``
    One safety probe of a (core, CPM reduction, workload) triple — the
    characterization methodology's unit of work.
``GuardbandViolationEvent``
    A timing-margin violation: either the DPLL loop read a below-threshold
    CPM margin (transient path) or a steady-state safety check found a
    core unsafe (``deficit_ps`` > 0).
``RollbackEvent``
    A CPM reduction was walked back — during uBench/application
    characterization, during stress-test validation, or as the vendor's
    deployment safety margin.
``DriftAlertEvent``
    The field monitor flagged a core as persistently slower than its
    deployed Eq. 1 predictor.
``SpanEvent``
    A completed tracer span (emitted by :class:`repro.obs.trace.Tracer`).
``AlertEvent``
    One alert-rule firing on one tick window (emitted by
    :mod:`repro.obs.alerts` evaluation, never during simulation).
``IncidentEvent``
    The open or close edge of a maximal run of consecutive firing
    windows for one rule — the incident timeline entry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ObsEvent:
    """Base class: every event carries its emission sequence number."""

    seq: int

    @property
    def event_type(self) -> str:
        """Wire name of this event's concrete type."""
        return type(self).__name__


@dataclass(frozen=True)
class CpmStepEvent(ObsEvent):
    """One safety probe at a CPM delay-reduction configuration."""

    core_label: str
    workload: str
    reduction_steps: int
    safe: bool
    slack_ps: float


@dataclass(frozen=True)
class GuardbandViolationEvent(ObsEvent):
    """A timing-guardband violation observed by the loop or a safety check."""

    core_label: str
    source: str  # "dpll" | "steady_state"
    workload: str = ""
    margin_units: int = 0
    threshold_units: int = 0
    frequency_mhz: float = 0.0
    deficit_ps: float = 0.0


@dataclass(frozen=True)
class RollbackEvent(ObsEvent):
    """A CPM reduction rolled back from one configuration to a safer one."""

    core_label: str
    stage: str  # "ubench" | "app" | "stress" | "deploy"
    workload: str
    from_steps: int
    to_steps: int

    @property
    def rollback_steps(self) -> int:
        """How many configuration steps the rollback gave up."""
        return self.from_steps - self.to_steps


@dataclass(frozen=True)
class DriftAlertEvent(ObsEvent):
    """A core newly flagged as drifting below its deployed predictor."""

    core_label: str
    samples: int
    mean_residual_mhz: float
    threshold_mhz: float


@dataclass(frozen=True)
class SpanEvent(ObsEvent):
    """A completed tracer span (start/end in observability ticks)."""

    name: str
    depth: int
    start_tick: float
    end_tick: float
    attrs: str = ""  # "k=v k=v" rendering of the span attributes
    wall_s: float = -1.0  # wall-clock duration; -1 outside profiling mode


@dataclass(frozen=True)
class AlertEvent(ObsEvent):
    """One alert-rule firing on one tick window.

    ``seq`` is the deterministic evaluation-order index (alerts sorted by
    ``(window, rule)``), not a simulation tick: alert evaluation happens
    after the run, over the tsdb, and must replay byte-identically.
    """

    rule: str
    kind: str  # "threshold" | "ratio_vs_baseline" | "quantile_fence" | "slo_burn_rate"
    metric: str
    severity: str  # "info" | "warning" | "critical"
    window: int
    start_tick: float
    value: float
    threshold: float


@dataclass(frozen=True)
class IncidentEvent(ObsEvent):
    """The open or close edge of a run of consecutive firing windows."""

    rule: str
    metric: str
    severity: str
    action: str  # "open" | "close"
    window: int
    windows_active: int
    worst_value: float
    threshold: float


#: Wire name → event class, the round-trip registry for the JSONL sink.
EVENT_TYPES: dict[str, type[ObsEvent]] = {
    cls.__name__: cls
    for cls in (
        CpmStepEvent,
        GuardbandViolationEvent,
        RollbackEvent,
        DriftAlertEvent,
        SpanEvent,
        AlertEvent,
        IncidentEvent,
    )
}


def event_to_dict(event: ObsEvent) -> dict:
    """Flat JSON-native form of ``event``, with a ``type`` discriminator.

    Events are flat dataclasses of scalars, so the instance ``__dict__``
    *is* the field mapping; copying it avoids the recursive walk of
    ``dataclasses.asdict``, which dominated the JSONL sink's cost on
    characterization workloads (tens of thousands of probe events).
    """
    document = {"type": type(event).__name__}
    document.update(event.__dict__)
    return document


def event_from_dict(document: dict) -> ObsEvent:
    """Rebuild an event from :func:`event_to_dict` output; validates type."""
    if not isinstance(document, dict):
        raise ConfigurationError(f"event document must be a dict, got {document!r}")
    type_name = document.get("type")
    cls = EVENT_TYPES.get(type_name)  # type: ignore[arg-type]
    if cls is None:
        known = ", ".join(sorted(EVENT_TYPES))
        raise ConfigurationError(
            f"unknown event type {type_name!r}; known: {known}"
        )
    fields = {f.name for f in dataclasses.fields(cls)}
    payload = {k: v for k, v in document.items() if k != "type"}
    missing = fields - set(payload)
    extra = set(payload) - fields
    if missing or extra:
        raise ConfigurationError(
            f"{type_name}: malformed event document "
            f"(missing {sorted(missing)}, extra {sorted(extra)})"
        )
    return cls(**payload)
