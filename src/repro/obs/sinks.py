"""Event sinks: where emitted events go.

A sink consumes :class:`~repro.obs.events.ObsEvent` objects.  Two concrete
sinks ship:

* :class:`RingBufferSink` — bounded in-memory buffer, for tests and for
  interactive inspection without touching disk;
* :class:`JsonlFileSink` — one canonical JSON object per line.  The
  serialization is deterministic (sorted keys, no timestamps), so two runs
  with the same seed produce byte-identical files.

``read_jsonl`` is the inverse of the file sink and powers ``repro trace``.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterator
from pathlib import Path

from ..errors import ConfigurationError
from .events import ObsEvent, event_from_dict, event_to_dict


class EventSink:
    """Consumer interface for emitted events."""

    #: Whether the runtime should construct and deliver events at all.
    #: Metrics-only sinks (:class:`NullSink`) opt out, and instrumentation
    #: sites skip event construction entirely — the streaming-telemetry
    #: mode's obs overhead is metric folds, not dead event objects.
    wants_events: bool = True

    def emit(self, event: ObsEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""


class RingBufferSink(EventSink):
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque[ObsEvent] = deque(maxlen=capacity)
        self._total = 0

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including those the ring has dropped."""
        return self._total

    def emit(self, event: ObsEvent) -> None:
        self._buffer.append(event)
        self._total += 1

    def events(self, event_type: type[ObsEvent] | None = None) -> list[ObsEvent]:
        """Buffered events in emission order, optionally filtered by type."""
        if event_type is None:
            return list(self._buffer)
        return [e for e in self._buffer if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self._buffer)


class NullSink(EventSink):
    """Metrics-only observability: declines events before they exist.

    Installed in process-pool workers and the obs-overhead bench
    (``repro fleet characterize --jobs N``): instruments still fold into
    mergeable summaries, but per-event streams are not captured — worker
    scheduling would otherwise interleave them nondeterministically.
    ``wants_events`` is False, so the runtime suppresses events at the
    *construction site* (``emit`` only counts events pushed directly).
    """

    wants_events = False

    def __init__(self):
        self._count = 0

    @property
    def count(self) -> int:
        """Events discarded so far (direct pushes only)."""
        return self._count

    def emit(self, event: ObsEvent) -> None:
        self._count += 1


def event_to_json_line(event: ObsEvent) -> str:
    """Canonical single-line JSON form of ``event`` (sorted keys)."""
    return json.dumps(
        event_to_dict(event), sort_keys=True, separators=(",", ":")
    )


class JsonlFileSink(EventSink):
    """Writes one canonical JSON line per event to ``path``."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        try:
            self._handle = self._path.open("w", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open event sink {self._path}: {exc}"
            ) from exc
        self._count = 0
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def count(self) -> int:
        """Events written so far."""
        return self._count

    def emit(self, event: ObsEvent) -> None:
        if self._closed:
            raise ConfigurationError(f"sink {self._path} is closed")
        self._handle.write(event_to_json_line(event))
        self._handle.write("\n")
        self._count += 1

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True


class TeeSink(EventSink):
    """Fans every event out to several sinks (e.g. ring buffer + file)."""

    def __init__(self, *sinks: EventSink):
        if not sinks:
            raise ConfigurationError("TeeSink needs at least one sink")
        self._sinks = sinks

    def emit(self, event: ObsEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def read_jsonl(path: str | Path) -> Iterator[ObsEvent]:
    """Parse a JSONL event file back into typed events, in file order.

    Accepts segmented streams the same way :func:`read_jsonl_documents`
    does (a ``*.segments.json`` index, or a logical path whose index sits
    beside it).
    """
    source = Path(path)
    from .stream.rotate import is_segment_index, segment_index_path

    if is_segment_index(source) or (
        not source.exists() and segment_index_path(source).exists()
    ):
        documents, _ = read_jsonl_documents(source)
        for document in documents:
            yield event_from_dict(document)
        return
    if not source.exists():
        raise ConfigurationError(f"no event file at {source}")
    with source.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{source}:{lineno}: not valid JSON: {exc}"
                ) from exc
            yield event_from_dict(document)


def read_jsonl_documents(
    path: str | Path, *, tolerant: bool = False
) -> tuple[list[dict], int]:
    """Parse a JSONL event stream into raw JSON documents.

    Returns ``(documents, skipped_lines)``.  With ``tolerant=True`` a
    malformed *final* line — the signature of a run that crashed mid-write
    — is skipped and counted instead of raising; malformed lines anywhere
    else always raise, because mid-stream corruption is never a clean
    truncation.  The analyze-layer loaders (diff engine, run store) use
    the tolerant mode so a crashed run can still be inspected.

    Segmented streams read transparently: passing a ``*.segments.json``
    index (or the logical path of a run that rotated, with the index
    sitting beside it) delegates to the segment reader, which applies the
    same tolerant-final-line rule to the final segment.
    """
    source = Path(path)
    # Local import: stream.rotate uses this module's line codec.
    from .stream.rotate import (
        is_segment_index,
        read_segmented_documents,
        segment_index_path,
    )

    if is_segment_index(source):
        return read_segmented_documents(source, tolerant=tolerant)
    if not source.exists():
        sibling_index = segment_index_path(source)
        if sibling_index.exists():
            return read_segmented_documents(sibling_index, tolerant=tolerant)
        raise ConfigurationError(f"no event file at {source}")
    payload = [
        (lineno, stripped)
        for lineno, raw in enumerate(
            source.read_text(encoding="utf-8").splitlines(), start=1
        )
        if (stripped := raw.strip())
    ]
    documents: list[dict] = []
    skipped = 0
    for position, (lineno, line) in enumerate(payload):
        try:
            documents.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerant and position == len(payload) - 1:
                skipped += 1
                break
            raise ConfigurationError(
                f"{source}:{lineno}: not valid JSON: {exc}"
            ) from exc
    return documents, skipped


def read_jsonl_tolerant(path: str | Path) -> tuple[list[ObsEvent], int]:
    """Typed variant of :func:`read_jsonl_documents` in tolerant mode.

    Returns ``(events, skipped_lines)`` where ``skipped_lines`` counts a
    truncated final line (0 or 1).
    """
    documents, skipped = read_jsonl_documents(path, tolerant=True)
    return [event_from_dict(document) for document in documents], skipped
