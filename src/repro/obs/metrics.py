"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.  All
three instrument types are cheap enough to leave permanently enabled: a
counter increment is one integer add, a histogram observation is one
binary search plus two adds, and a gauge observation is one columnar
append (exact mode) or one sketch insert (streaming mode).

Gauges come in two modes, chosen per registry:

* ``exact`` (default) — full sample history in a
  :class:`~repro.obs.columnar.TraceRecorder`; summaries are numpy
  percentiles over every sample.  Memory grows with sample count.
* ``streaming`` — bounded memory: samples fold into a deterministic
  :class:`~repro.obs.stream.sketch.QuantileSketch`; summaries are
  estimates within the sketch's documented relative error bound, and the
  summary dict carries ``"mode": "streaming"`` so readers know.

Counters and histograms are exact and **mergeable** in both modes;
streaming gauges merge too.  :meth:`MetricsRegistry.merge` (and its
state-dict form for process pools) is order-invariant: every component
is a commutative, associative fold over the observation multiset —
integer adds, error-free sums, min/max, and the partition-invariant
sketch — so partial registries from chunked or pooled runs fold into
byte-identical summaries regardless of chunk size or scheduling.  Exact
gauges are the one non-mergeable instrument (a trace is a sequence, not
a multiset); merging a registry that holds exact gauge samples raises.

Nothing here reads the host clock; gauge samples are keyed on whatever
simulated tick the caller supplies (defaulting to the sample index), so a
registry's summary is byte-for-byte reproducible for a fixed seed.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from ..analysis.rendering import ascii_table
from ..errors import ConfigurationError
from .columnar import TraceRecorder
from .stream.histogram import MergeableHistogram
from .stream.sketch import QuantileSketch

#: Default histogram buckets (upper bounds); chosen to resolve both
#: iteration counts and millisecond-scale quantities without tuning.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)

#: Registry gauge modes (see the module docstring).
GAUGE_MODES = ("exact", "streaming")


def identity_tick(identity: str) -> float:
    """Partition-invariant gauge tick derived from a stable identity.

    Streaming gauges define ``last`` as the max ``(tick, value)`` pair, so
    a merged ``last`` is only a pure function of the sample multiset when
    ticks are themselves partition-invariant.  Call sites with no natural
    global index (e.g. per-chip solves that may run in any pool worker)
    hash a stable identity string — the chip id — into the tick.  The
    first 13 hex digits (52 bits) fit a float64 exactly.
    """
    digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()
    return float(int(digest[:13], 16))


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"{self.name}: cannot count down by {amount}")
        self._value += amount

    def merge(self, other: Counter) -> None:
        """Fold another counter in (integer add: order-invariant)."""
        self._value += other._value

    def to_state(self) -> dict:
        return {"kind": "counter", "value": self._value}

    @classmethod
    def from_state(cls, name: str, state: dict) -> Counter:
        out = cls(name)
        out._value = int(state["value"])
        return out


class Gauge:
    """A sampled value: full columnar history or a bounded-memory sketch."""

    def __init__(self, name: str, mode: str = "exact"):
        if mode not in GAUGE_MODES:
            raise ConfigurationError(
                f"{name}: unknown gauge mode {mode!r} "
                f"(choose from {', '.join(GAUGE_MODES)})"
            )
        self.name = name
        self.mode = mode
        self._trace: TraceRecorder | None = None
        self._sketch: QuantileSketch | None = None
        # Streaming mode keeps "last" as the max (tick, value) pair — a
        # pure function of the sample multiset, so merges stay invariant.
        self._last: tuple[float, float] | None = None
        if mode == "exact":
            self._trace = TraceRecorder(("tick", "value"))
        else:
            self._sketch = QuantileSketch()

    @property
    def sample_count(self) -> int:
        if self._trace is not None:
            return len(self._trace)
        assert self._sketch is not None
        return self._sketch.count

    @property
    def trace(self) -> TraceRecorder:
        """The columnar sample history (exact mode only)."""
        if self._trace is None:
            raise ConfigurationError(
                f"{self.name}: streaming gauges keep no sample history"
            )
        return self._trace

    @property
    def sketch(self) -> QuantileSketch:
        """The quantile sketch (streaming mode only)."""
        if self._sketch is None:
            raise ConfigurationError(
                f"{self.name}: exact gauges have no sketch; use .trace"
            )
        return self._sketch

    def set(self, value: float, tick: float | None = None) -> None:
        """Record one sample at simulated ``tick`` (default: sample index)."""
        value = float(value)
        if self._trace is not None:
            self._trace.record(
                tick=float(len(self._trace)) if tick is None else float(tick),
                value=value,
            )
            return
        assert self._sketch is not None
        tick = float(self._sketch.count) if tick is None else float(tick)
        self._sketch.add(value)
        key = (tick, value)
        if self._last is None or key > self._last:
            self._last = key

    @property
    def last(self) -> float:
        """Most recent sample; raises on an empty gauge.

        Streaming mode defines "most recent" as the sample with the
        largest tick (value as tiebreak) — identical to emission order
        when ticks are monotonic, and merge-order-invariant always.
        """
        if self._trace is not None:
            if len(self._trace) == 0:
                raise ConfigurationError(f"{self.name}: gauge has no samples")
            return float(self._trace.column("value")[-1])
        if self._last is None:
            raise ConfigurationError(f"{self.name}: gauge has no samples")
        return self._last[1]

    def summary(self) -> dict[str, float]:
        """min/max/mean/p50/p95/p99 of every sample.

        Exact mode: numpy percentiles over the full history.  Streaming
        mode: sketch estimates within
        :attr:`~repro.obs.stream.sketch.QuantileSketch.quantile_error_bound`.
        """
        if self._trace is not None:
            return self._trace.summary("value")
        assert self._sketch is not None
        return self._sketch.summary()

    def merge(self, other: Gauge) -> None:
        """Fold another gauge in (streaming mode only)."""
        if self.mode != other.mode:
            raise ConfigurationError(
                f"{self.name}: cannot merge {other.mode} gauge into "
                f"{self.mode} gauge"
            )
        if self._trace is not None:
            raise ConfigurationError(
                f"{self.name}: exact gauges are not mergeable (a trace is "
                f"a sequence, not a multiset); use streaming mode"
            )
        assert self._sketch is not None and other._sketch is not None
        self._sketch.merge(other._sketch)
        if other._last is not None and (
            self._last is None or other._last > self._last
        ):
            self._last = other._last

    @property
    def memory_nbytes(self) -> int:
        """Approximate bytes held for samples (the bench's O(1) witness)."""
        if self._trace is not None:
            return self._trace.nbytes
        assert self._sketch is not None
        return self._sketch.memory_nbytes

    def to_state(self) -> dict:
        if self._trace is not None:
            return {
                "kind": "gauge",
                "mode": "exact",
                "samples": [
                    [float(t), float(v)]
                    for t, v in zip(
                        self._trace.column("tick"), self._trace.column("value")
                    )
                ],
            }
        assert self._sketch is not None
        return {
            "kind": "gauge",
            "mode": "streaming",
            "sketch": self._sketch.to_state(),
            "last": list(self._last) if self._last is not None else None,
        }

    @classmethod
    def from_state(cls, name: str, state: dict) -> Gauge:
        out = cls(name, mode=str(state["mode"]))
        if out.mode == "exact":
            for tick, value in state["samples"]:
                out.set(float(value), tick=float(tick))
        else:
            out._sketch = QuantileSketch.from_state(state["sketch"])
            last = state.get("last")
            out._last = (float(last[0]), float(last[1])) if last else None
        return out


class Histogram:
    """Fixed-bucket histogram of float observations (exact, mergeable).

    Backed by :class:`~repro.obs.stream.histogram.MergeableHistogram`:
    integer bucket counts plus an error-free sum, so two histograms with
    identical bounds merge order-invariantly.
    """

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ConfigurationError(f"{name}: histogram needs buckets")
        self.name = name
        try:
            self._hist = MergeableHistogram(buckets)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{name}: {exc}") from exc

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._hist.bounds

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def sum(self) -> float:
        """Exact (correctly-rounded, order-invariant) observation sum."""
        return self._hist.sum

    @property
    def mean(self) -> float:
        if self._hist.count == 0:
            raise ConfigurationError(f"{self.name}: histogram is empty")
        return self._hist.mean

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket (observations <= bound)."""
        self._hist.observe(value)

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return tuple(self._hist.bucket_counts())

    def quantile(self, q: float, *, interpolate: bool = False) -> float:
        """Approximate quantile over the bucket counts.

        Default (``interpolate=False``): the covering bucket's **upper
        bound** — read it as "q of observations were <= this"; the rank
        falling in the overflow bucket returns ``inf``.  With
        ``interpolate=True``: a finite point estimate, linearly
        interpolated inside the covering bucket and clamped to the
        observed min/max (see
        :meth:`repro.obs.stream.histogram.MergeableHistogram.quantile`).
        """
        if self._hist.count == 0:
            raise ConfigurationError(f"{self.name}: histogram is empty")
        return self._hist.quantile(q, interpolate=interpolate)

    def merge(self, other: Histogram) -> None:
        """Fold another histogram in (requires identical bounds)."""
        try:
            self._hist.merge(other._hist)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{self.name}: {exc}") from exc

    def to_state(self) -> dict:
        state = self._hist.to_state()
        state["kind"] = "histogram"
        return state

    @classmethod
    def from_state(cls, name: str, state: dict) -> Histogram:
        out = cls(name, buckets=state["bounds"])
        out._hist = MergeableHistogram.from_state(
            {k: v for k, v in state.items() if k != "kind"}
        )
        return out


#: Registry state-dict schema (the shape pool workers ship home).
REGISTRY_STATE_SCHEMA = 1

#: Instrument-name prefixes that describe the *execution environment*
#: (what happened to be cached on this machine) rather than the physics
#: of the run.  They stay live in the registry — and in the state dicts
#: pool workers ship home, so parents see fleet-wide totals — but
#: :meth:`MetricsRegistry.to_summary` omits them, keeping run manifests
#: byte-identical whether the persistent solve store was cold, warm, or
#: disabled.  Read them via ``repro store stats`` / ``SolveStore.stats``.
EXECUTION_SCOPED_PREFIXES = ("fastpath.store.",)

_INSTRUMENT_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Flat namespace of counters, gauges, and histograms.

    Instruments are get-or-create by name; asking for an existing name
    with a different instrument type is an error (one name, one meaning).
    ``gauge_mode`` selects exact (full-history) or streaming
    (bounded-memory, mergeable) gauges for every gauge in this registry.
    """

    def __init__(self, gauge_mode: str = "exact"):
        if gauge_mode not in GAUGE_MODES:
            raise ConfigurationError(
                f"unknown gauge mode {gauge_mode!r} "
                f"(choose from {', '.join(GAUGE_MODES)})"
            )
        self._gauge_mode = gauge_mode
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    @property
    def gauge_mode(self) -> str:
        return self._gauge_mode

    def _get_or_create(self, name: str, factory, kind: type):
        if not name:
            raise ConfigurationError("instrument name must be non-empty")
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"{name} is a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, mode=self._gauge_mode), Gauge
        )

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, buckets), Histogram)

    def names(self) -> tuple[str, ...]:
        """Every registered instrument name, sorted."""
        return tuple(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def merge(self, other: MetricsRegistry) -> None:
        """Fold another registry in — the fleet rollup operator.

        Order-invariant by construction: counters are integer adds,
        histograms are integer bucket adds plus error-free sums, and
        streaming gauges merge partition-invariant sketches, so any
        sequence of merges over any partitioning of the observations
        produces the same summary bytes.  Registries holding exact gauge
        samples refuse to merge (full traces are sequences, and
        concatenation order would leak scheduling into the result).
        """
        if self._gauge_mode != other._gauge_mode:
            raise ConfigurationError(
                f"cannot merge a {other._gauge_mode}-gauge registry into "
                f"a {self._gauge_mode}-gauge registry"
            )
        for name in sorted(other._instruments):
            theirs = other._instruments[name]
            mine = self._instruments.get(name)
            if mine is None:
                if isinstance(theirs, Counter):
                    mine = self.counter(name)
                elif isinstance(theirs, Gauge):
                    mine = self.gauge(name)
                else:
                    mine = self.histogram(name, buckets=theirs.bounds)
            elif type(mine) is not type(theirs):
                raise ConfigurationError(
                    f"{name} is a {type(mine).__name__} here but a "
                    f"{type(theirs).__name__} in the merged registry"
                )
            mine.merge(theirs)  # type: ignore[arg-type]

    def to_state(self) -> dict:
        """JSON-native mergeable state (what pool workers return)."""
        return {
            "schema": REGISTRY_STATE_SCHEMA,
            "gauge_mode": self._gauge_mode,
            "instruments": {
                name: self._instruments[name].to_state() for name in self.names()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> MetricsRegistry:
        schema = state.get("schema")
        if schema != REGISTRY_STATE_SCHEMA:
            raise ConfigurationError(
                f"unsupported registry state schema {schema!r}"
            )
        out = cls(gauge_mode=str(state["gauge_mode"]))
        for name, instrument_state in state["instruments"].items():
            kind = str(instrument_state.get("kind"))
            factory = _INSTRUMENT_KINDS.get(kind)
            if factory is None:
                raise ConfigurationError(f"{name}: unknown instrument kind {kind!r}")
            out._instruments[name] = factory.from_state(name, instrument_state)
        return out

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`to_state` dict in."""
        self.merge(MetricsRegistry.from_state(state))

    def to_summary(self) -> dict[str, dict]:
        """Deterministic nested-dict summary of every instrument.

        Execution-scoped instruments (:data:`EXECUTION_SCOPED_PREFIXES`)
        are omitted: they report store-cache traffic, which varies with
        what is on disk, and a run's summary must not.
        """
        summary: dict[str, dict] = {}
        for name in self.names():
            if name.startswith(EXECUTION_SCOPED_PREFIXES):
                continue
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                summary[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                entry: dict = {"kind": "gauge", "samples": instrument.sample_count}
                if instrument.mode == "streaming":
                    entry["mode"] = "streaming"
                if instrument.sample_count:
                    entry.update(instrument.summary())
                summary[name] = entry
            else:
                entry = {"kind": "histogram", "count": instrument.count}
                if instrument.count:
                    entry["mean"] = instrument.mean
                    entry["p50"] = instrument.quantile(0.5)
                    entry["p95"] = instrument.quantile(0.95)
                    entry["p99"] = instrument.quantile(0.99)
                    # Finite point estimates alongside the conservative
                    # bucket bounds (rendered as ~p95 in the table).
                    entry["p50_interp"] = instrument.quantile(0.5, interpolate=True)
                    entry["p95_interp"] = instrument.quantile(0.95, interpolate=True)
                    entry["p99_interp"] = instrument.quantile(0.99, interpolate=True)
                summary[name] = entry
        return summary

    def render_table(self, title: str = "metrics") -> str:
        """Fixed-width table of every instrument, one row each."""
        return render_summary_table(self.to_summary(), title=title)


def render_summary_table(summary: dict[str, dict], title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.to_summary` dict (or one read back
    from a run manifest) as a fixed-width table.

    Histogram quantiles render twice: the conservative bucket upper bound
    (``p95<=``) and, when the raw counts are not available (summaries only
    carry the precomputed bounds), that is the whole story — interpolated
    point estimates are a live-:class:`Histogram` query
    (``quantile(q, interpolate=True)``), surfaced here as ``~p95`` when an
    entry carries them.
    """
    rows = []
    for name in sorted(summary):
        entry = summary[name]
        kind = entry["kind"]
        if kind == "counter":
            detail = f"value={entry['value']}"
        elif kind == "gauge":
            if entry["samples"]:
                detail = (
                    f"n={entry['samples']} mean={entry['mean']:.4g} "
                    f"p50={entry['p50']:.4g} p95={entry['p95']:.4g}"
                )
                # Summaries read back from pre-p99 manifests lack the key.
                if "p99" in entry:
                    detail += f" p99={entry['p99']:.4g}"
                if entry.get("mode") == "streaming":
                    detail += " (streaming est.)"
            else:
                detail = "n=0"
        else:
            if entry["count"]:
                detail = (
                    f"n={entry['count']} mean={entry['mean']:.4g} "
                    f"p50<={entry['p50']:.4g} p95<={entry['p95']:.4g}"
                )
                if "p99" in entry:
                    detail += f" p99<={entry['p99']:.4g}"
                if "p95_interp" in entry:
                    detail += f" ~p95={entry['p95_interp']:.4g}"
            else:
                detail = "n=0"
        rows.append((name, kind, detail))
    if not rows:
        return f"{title}\n(no instruments registered)"
    return ascii_table(("metric", "kind", "summary"), rows, title=title)
