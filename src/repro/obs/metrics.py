"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.  All
three instrument types are cheap enough to leave permanently enabled: a
counter increment is one integer add, a histogram observation is one
binary search plus two adds, and a gauge observation is one columnar
append (gauges store their full sample history in a
:class:`~repro.obs.columnar.TraceRecorder`, the columnar backend shared
with the transient simulator's traces).

Nothing here reads the host clock; gauge samples are keyed on whatever
simulated tick the caller supplies (defaulting to the sample index), so a
registry's summary is byte-for-byte reproducible for a fixed seed.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

from ..analysis.rendering import ascii_table
from ..errors import ConfigurationError
from .columnar import TraceRecorder

#: Default histogram buckets (upper bounds); chosen to resolve both
#: iteration counts and millisecond-scale quantities without tuning.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"{self.name}: cannot count down by {amount}")
        self._value += amount


class Gauge:
    """A sampled value with full columnar history."""

    def __init__(self, name: str):
        self.name = name
        self._trace = TraceRecorder(("tick", "value"))

    @property
    def sample_count(self) -> int:
        return len(self._trace)

    @property
    def trace(self) -> TraceRecorder:
        """The columnar sample history (tick, value)."""
        return self._trace

    def set(self, value: float, tick: float | None = None) -> None:
        """Record one sample at simulated ``tick`` (default: sample index)."""
        self._trace.record(
            tick=float(len(self._trace)) if tick is None else float(tick),
            value=float(value),
        )

    @property
    def last(self) -> float:
        """Most recent sample; raises on an empty gauge."""
        if len(self._trace) == 0:
            raise ConfigurationError(f"{self.name}: gauge has no samples")
        return float(self._trace.column("value")[-1])

    def summary(self) -> dict[str, float]:
        """min/max/mean/p50/p95/p99 of every sample."""
        return self._trace.summary("value")


class Histogram:
    """Fixed-bucket histogram of float observations."""

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ConfigurationError(f"{name}: histogram needs buckets")
        upper_bounds = tuple(float(b) for b in buckets)
        if list(upper_bounds) != sorted(set(upper_bounds)):
            raise ConfigurationError(
                f"{name}: bucket bounds must be strictly increasing"
            )
        self.name = name
        self._bounds = upper_bounds
        # One overflow bucket past the last bound.
        self._counts = [0] * (len(upper_bounds) + 1)
        self._total = 0
        self._sum = 0.0

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ConfigurationError(f"{self.name}: histogram is empty")
        return self._sum / self._total

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket (observations <= bound)."""
        self._counts[bisect.bisect_left(self._bounds, float(value))] += 1
        self._total += 1
        self._sum += float(value)

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0:
            raise ConfigurationError(f"{self.name}: histogram is empty")
        target = q * self._total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                if index < len(self._bounds):
                    return self._bounds[index]
                return float("inf")
        return float("inf")


class MetricsRegistry:
    """Flat namespace of counters, gauges, and histograms.

    Instruments are get-or-create by name; asking for an existing name
    with a different instrument type is an error (one name, one meaning).
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        if not name:
            raise ConfigurationError("instrument name must be non-empty")
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"{name} is a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, buckets), Histogram)

    def names(self) -> tuple[str, ...]:
        """Every registered instrument name, sorted."""
        return tuple(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def to_summary(self) -> dict[str, dict]:
        """Deterministic nested-dict summary of every instrument."""
        summary: dict[str, dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                summary[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                entry: dict = {"kind": "gauge", "samples": instrument.sample_count}
                if instrument.sample_count:
                    entry.update(instrument.summary())
                summary[name] = entry
            else:
                entry = {"kind": "histogram", "count": instrument.count}
                if instrument.count:
                    entry["mean"] = instrument.mean
                    entry["p50"] = instrument.quantile(0.5)
                    entry["p95"] = instrument.quantile(0.95)
                    entry["p99"] = instrument.quantile(0.99)
                summary[name] = entry
        return summary

    def render_table(self, title: str = "metrics") -> str:
        """Fixed-width table of every instrument, one row each."""
        return render_summary_table(self.to_summary(), title=title)


def render_summary_table(summary: dict[str, dict], title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.to_summary` dict (or one read back
    from a run manifest) as a fixed-width table."""
    rows = []
    for name in sorted(summary):
        entry = summary[name]
        kind = entry["kind"]
        if kind == "counter":
            detail = f"value={entry['value']}"
        elif kind == "gauge":
            if entry["samples"]:
                detail = (
                    f"n={entry['samples']} mean={entry['mean']:.4g} "
                    f"p50={entry['p50']:.4g} p95={entry['p95']:.4g}"
                )
                # Summaries read back from pre-p99 manifests lack the key.
                if "p99" in entry:
                    detail += f" p99={entry['p99']:.4g}"
            else:
                detail = "n=0"
        else:
            if entry["count"]:
                detail = (
                    f"n={entry['count']} mean={entry['mean']:.4g} "
                    f"p50<={entry['p50']:.4g} p95<={entry['p95']:.4g}"
                )
                if "p99" in entry:
                    detail += f" p99<={entry['p99']:.4g}"
            else:
                detail = "n=0"
        rows.append((name, kind, detail))
    if not rows:
        return f"{title}\n(no instruments registered)"
    return ascii_table(("metric", "kind", "summary"), rows, title=title)
