"""Metrics history: per-metric time series across registered runs.

Folds the ``metrics_summary`` and ``result_metrics`` of every manifest in
a :class:`~repro.obs.analyze.store.RunStore` into per-metric series (one
point per run, in run-id order), plus ``BENCH_solver.json``-style wall
artifacts into wall-clock series.  Regression flagging reuses the exact
ratio-plus-noise-floor gate of ``repro bench --compare``
(:func:`repro.analysis.bench.exceeds_ratio_gate`): a metric is flagged
when its latest point exceeds its first by more than the threshold ratio
*and* the absolute floor.

Headline scalars per instrument kind: a counter contributes its value, a
gauge and a histogram their mean.  ``SpanEvent.wall_s == -1`` is the
"not profiled" sentinel and is excluded from every span statistic
(:func:`span_wall_stats`) — a report must never average a sentinel.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from ...analysis.bench import MIN_REGRESSION_S, exceeds_ratio_gate
from ...analysis.rendering import ascii_table
from ...errors import ConfigurationError
from .store import RunStore


@dataclass(frozen=True)
class SeriesPoint:
    """One observation of one metric (labelled by run id / artifact name)."""

    label: str
    value: float


@dataclass(frozen=True)
class MetricSeries:
    """All observations of one metric, in label order of collection."""

    name: str
    #: "counter" | "gauge" | "histogram" | "result" | "wall"
    kind: str
    points: tuple[SeriesPoint, ...]

    @property
    def first(self) -> float:
        if not self.points:
            raise ConfigurationError(f"{self.name}: series is empty")
        return self.points[0].value

    @property
    def latest(self) -> float:
        if not self.points:
            raise ConfigurationError(f"{self.name}: series is empty")
        return self.points[-1].value


@dataclass(frozen=True)
class RegressionFlag:
    """One metric whose latest point trips the ratio gate.

    ``direction`` says which way: ``"regression"`` (latest exceeds first)
    or ``"improvement"`` (first exceeds latest, the same gate with the
    arguments swapped).
    """

    name: str
    kind: str
    baseline: float
    latest: float
    direction: str = "regression"

    @property
    def ratio(self) -> float:
        if self.baseline > 0.0:
            return self.latest / self.baseline
        return float("inf") if self.latest > 0.0 else 0.0

    @property
    def delta(self) -> float:
        """Signed change, latest minus baseline."""
        return self.latest - self.baseline

    def render(self) -> str:
        return (
            f"{self.name} ({self.kind}): {self.baseline:.6g} -> "
            f"{self.latest:.6g} ({self.delta:+.6g}, {self.ratio:.2f}x)"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "baseline": self.baseline,
            "latest": self.latest,
            "delta": self.delta,
            "direction": self.direction,
        }


def headline_value(entry: dict) -> float | None:
    """The scalar a summary entry contributes to its series (None = skip)."""
    kind = entry.get("kind")
    if kind == "counter":
        return float(entry["value"])
    if kind == "gauge":
        return float(entry["mean"]) if entry.get("samples") else None
    if kind == "histogram":
        return float(entry["mean"]) if entry.get("count") else None
    return None


def build_history(
    store: RunStore,
    *,
    experiment_id: str | None = None,
    metrics: Sequence[str] | None = None,
) -> tuple[MetricSeries, ...]:
    """Fold every registered manifest into per-metric series.

    Result metrics appear as ``result.<name>``; instrument summaries keep
    their registry names.  ``metrics`` filters by exact name after that
    prefixing; ``experiment_id`` restricts which runs contribute.  Points
    are ordered by run id (the registry's only deterministic order).
    """
    wanted = set(metrics) if metrics is not None else None
    series: dict[str, tuple[str, list[SeriesPoint]]] = {}
    for record in store.records():
        if experiment_id is not None and record.experiment_id != experiment_id:
            continue
        manifest = store.load(record.run_id).manifest
        folded: list[tuple[str, str, float]] = [
            (f"result.{name}", "result", float(value))
            for name, value in manifest.result_metrics.items()
        ]
        for name, entry in manifest.metrics_summary.items():
            value = headline_value(entry)
            if value is not None:
                folded.append((name, str(entry.get("kind")), value))
        for name, kind, value in folded:
            if wanted is not None and name not in wanted:
                continue
            slot = series.setdefault(name, (kind, []))
            slot[1].append(SeriesPoint(label=record.run_id, value=value))
    return tuple(
        MetricSeries(name=name, kind=kind, points=tuple(points))
        for name, (kind, points) in sorted(series.items())
    )


def bench_wall_series(paths: Sequence[str | Path]) -> tuple[MetricSeries, ...]:
    """Fold bench artifacts into wall-clock series.

    Each path must be a ``bench_solver/*`` document; its file name is the
    point label.  Produces ``bench.total_wall_s`` plus one
    ``bench.<experiment>.wall_s`` series per experiment the artifacts
    share point(s) for.
    """
    series: dict[str, list[SeriesPoint]] = {}
    for path in paths:
        source = Path(path)
        if not source.exists():
            raise ConfigurationError(f"no bench artifact at {source}")
        try:
            document = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{source} is not valid JSON: {exc}") from exc
        schema = str(document.get("schema", ""))
        if not schema.startswith("bench_solver/"):
            raise ConfigurationError(
                f"{source} is not a bench artifact (schema {schema!r})"
            )
        label = source.name
        series.setdefault("bench.total_wall_s", []).append(
            SeriesPoint(label=label, value=float(document.get("total_wall_s", 0.0)))
        )
        for entry in document.get("experiments", []):
            name = f"bench.{entry['id']}.wall_s"
            series.setdefault(name, []).append(
                SeriesPoint(label=label, value=float(entry["wall_s"]))
            )
    return tuple(
        MetricSeries(name=name, kind="wall", points=tuple(points))
        for name, points in sorted(series.items())
    )


def flag_regressions(
    series: Sequence[MetricSeries],
    *,
    threshold: float = 2.0,
    min_delta: float = 0.0,
    wall_min_delta: float = MIN_REGRESSION_S,
) -> tuple[RegressionFlag, ...]:
    """Flag series whose latest point regresses past their first point.

    "Regression" means *increase*: these series are costs (wall seconds,
    rollback counts, violation counters), so more is worse.  Wall series
    get the bench noise floor; everything else uses ``min_delta``
    (default 0 — counters are exact, there is no scheduling noise to
    forgive).
    """
    flags = []
    for one in series:
        if len(one.points) < 2:
            continue
        floor = wall_min_delta if one.kind == "wall" else min_delta
        if exceeds_ratio_gate(
            one.latest, one.first, threshold=threshold, min_delta=floor
        ):
            flags.append(
                RegressionFlag(
                    name=one.name,
                    kind=one.kind,
                    baseline=one.first,
                    latest=one.latest,
                )
            )
    return tuple(flags)


def flag_improvements(
    series: Sequence[MetricSeries],
    *,
    threshold: float = 2.0,
    min_delta: float = 0.0,
    wall_min_delta: float = MIN_REGRESSION_S,
) -> tuple[RegressionFlag, ...]:
    """Flag series whose latest point *improves* past their first point.

    The exact mirror of :func:`flag_regressions` — the same two-condition
    ratio gate with the arguments swapped, so a drop only counts when the
    first point exceeds the latest by the threshold ratio and the floor.
    Surfacing wins keeps ``repro obs history`` honest in both directions:
    a bench that got 3x faster shows up next to one that got 3x slower.
    """
    flags = []
    for one in series:
        if len(one.points) < 2:
            continue
        floor = wall_min_delta if one.kind == "wall" else min_delta
        if exceeds_ratio_gate(
            one.first, one.latest, threshold=threshold, min_delta=floor
        ):
            flags.append(
                RegressionFlag(
                    name=one.name,
                    kind=one.kind,
                    baseline=one.first,
                    latest=one.latest,
                    direction="improvement",
                )
            )
    return tuple(flags)


def span_wall_stats(documents: Sequence[dict]) -> dict:
    """Wall-clock statistics over a stream's ``SpanEvent`` documents.

    ``wall_s == -1`` is the "not profiled" sentinel (the tracer outside
    profiling mode); it must never enter an aggregate, so only spans with
    ``wall_s >= 0`` contribute to the wall statistics.
    """
    spans = [doc for doc in documents if doc.get("type") == "SpanEvent"]
    profiled = [
        float(doc["wall_s"])
        for doc in spans
        if float(doc.get("wall_s", -1.0)) >= 0.0
    ]
    stats: dict[str, float | int] = {
        "spans": len(spans),
        "profiled": len(profiled),
    }
    if profiled:
        stats["wall_total_s"] = sum(profiled)
        stats["wall_mean_s"] = sum(profiled) / len(profiled)
        stats["wall_max_s"] = max(profiled)
    return stats


def render_history(
    series: Sequence[MetricSeries],
    flags: Sequence[RegressionFlag],
    *,
    improvements: Sequence[RegressionFlag] = (),
    title: str = "metrics history",
    threshold: float = 2.0,
) -> str:
    """Fixed-width history table plus the regression/improvement verdict.

    The delta column is signed and the direction column marks both ways:
    ``REGRESSED`` for cost increases past the gate, ``improved`` for
    drops past the same gate.
    """
    if not series:
        return f"{title}\n(no metric series)"
    flagged = {flag.name for flag in flags}
    improved = {flag.name for flag in improvements}
    rows = []
    for one in series:
        if one.first > 0.0:
            ratio = f"{one.latest / one.first:.2f}x"
        elif one.latest > 0.0:
            ratio = "inf"
        else:
            ratio = "-"
        if one.name in flagged:
            direction = "REGRESSED"
        elif one.name in improved:
            direction = "improved"
        else:
            direction = ""
        rows.append(
            (
                one.name,
                one.kind,
                len(one.points),
                f"{one.first:.6g}",
                f"{one.latest:.6g}",
                f"{one.latest - one.first:+.6g}",
                ratio,
                direction,
            )
        )
    table = ascii_table(
        ("metric", "kind", "n", "first", "latest", "delta", "ratio", "direction"),
        rows,
        title=title,
    )
    verdict = (
        f"{len(flags)} regression(s) past {threshold:.2f}x"
        if flags
        else f"no regressions past {threshold:.2f}x"
    )
    if improvements:
        verdict += f", {len(improvements)} improvement(s)"
    return f"{table}\n{verdict}"


def history_to_dict(
    series: Sequence[MetricSeries],
    flags: Sequence[RegressionFlag],
    improvements: Sequence[RegressionFlag],
    *,
    threshold: float = 2.0,
) -> dict:
    """Canonical JSON document for ``repro obs history --format json``."""
    return {
        "kind": "obs_history",
        "schema": 1,
        "threshold": threshold,
        "series": [
            {
                "name": one.name,
                "kind": one.kind,
                "points": [
                    {"label": point.label, "value": point.value}
                    for point in one.points
                ],
                "first": one.first,
                "latest": one.latest,
                "delta": one.latest - one.first,
            }
            for one in series
        ],
        "regressions": [flag.to_dict() for flag in flags],
        "improvements": [flag.to_dict() for flag in improvements],
    }
