"""The read side of ``repro.obs``: analytics over recorded runs.

Everything under ``obs.analyze`` *consumes* the deterministic artifacts
the write side produces (JSONL event streams, run manifests, fleet
aggregates) and never touches simulation state:

``store``
    :class:`RunStore`, the on-disk run registry — index observed runs by
    manifest (seed, limit-table fingerprint, events sha256) with
    put/load/prune and a canonical ``index.json``.
``diff``
    First-divergence diffing of two event streams plus a manifest differ
    that classifies a mismatch as seed, fingerprint, schema, or stream
    drift — the regression oracle behind ``repro obs diff`` and the
    golden tests' failure pinpointing.
``history``
    Per-metric time series folded from registered manifests and
    ``BENCH_solver.json``-style wall artifacts, with the same
    ratio-plus-noise-floor regression gate as ``repro bench --compare``.
``fleet_health``
    Outlier-chip triage over per-chip characterization limits using
    nearest-rank quantile fences (the Fig. 7 distributions, read as a
    fleet health surface).
``report``
    Deterministic markdown/JSON digests over all of the above.

Like the write side, every output here is byte-identical across
same-seed invocations: no wall clock, no hostnames, no absolute paths.
"""

from .diff import (
    Divergence,
    FieldDelta,
    ManifestDiff,
    StreamDiff,
    diff_documents,
    diff_manifests,
    diff_streams,
    explain_divergence,
)
from .fleet_health import ChipHealth, FleetHealthReport, assess_fleet
from .history import (
    MetricSeries,
    RegressionFlag,
    SeriesPoint,
    bench_wall_series,
    build_history,
    flag_improvements,
    flag_regressions,
    history_to_dict,
    render_history,
    span_wall_stats,
)
from .report import build_report, render_markdown
from .store import LoadedRun, RunRecord, RunStore

__all__ = [
    "Divergence",
    "FieldDelta",
    "ManifestDiff",
    "StreamDiff",
    "diff_documents",
    "diff_manifests",
    "diff_streams",
    "explain_divergence",
    "ChipHealth",
    "FleetHealthReport",
    "assess_fleet",
    "MetricSeries",
    "RegressionFlag",
    "SeriesPoint",
    "bench_wall_series",
    "build_history",
    "flag_improvements",
    "flag_regressions",
    "history_to_dict",
    "render_history",
    "span_wall_stats",
    "build_report",
    "render_markdown",
    "LoadedRun",
    "RunRecord",
    "RunStore",
]
