"""Fleet health: outlier-chip triage over characterization limits.

The paper's Fig. 7 shows per-core idle/uBench limit distributions on a
two-chip testbed; at fleet scale the same distributions become a triage
surface: a chip whose cores sit far below the fleet's uBench limits (or
roll back far more often) is the one a vendor pulls for re-screening.

Fences are nearest-rank quantile fences over the fleet-wide *per-core*
distributions (the same :func:`~repro.core.fleet.quantile_from_counts`
machinery ``repro fleet characterize`` aggregates with):

* ``low_idle_limit`` / ``low_ubench_limit`` — the chip's mean limit falls
  below ``p50 − k·max(p50 − p10, 1)`` steps;
* ``high_rollback_rate`` — the chip's rollback rate exceeds
  ``p50 + k·max(p90 − p50, 1/n_cores)`` over the per-chip rates.

The ``max(…, unit)`` spread floor keeps a perfectly tight fleet (zero
spread) from flagging every chip over ties.  Everything is a pure
function of the seed: same seed ⇒ byte-identical report.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ...analysis.rendering import ascii_table
from ...core.fleet import ChipStats, collect_chip_stats, quantile_from_counts
from ...errors import ConfigurationError
from ...silicon.chipspec import CORES_PER_CHIP

#: Default fence multiplier (Tukey-style, over quantile spreads).
DEFAULT_FENCE_K = 1.5


def nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of a float sample (exact, no interpolation)."""
    if not values:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    if not (0.0 <= q <= 1.0):
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ChipHealth:
    """One chip's digest row plus the fences it trips."""

    chip_id: str
    mean_idle_steps: float
    mean_ubench_steps: float
    min_ubench_steps: int
    max_rollback_steps: int
    rollback_rate: float
    flags: tuple[str, ...]

    @property
    def healthy(self) -> bool:
        return not self.flags

    def to_dict(self) -> dict:
        return {
            "chip_id": self.chip_id,
            "mean_idle_steps": round(self.mean_idle_steps, 6),
            "mean_ubench_steps": round(self.mean_ubench_steps, 6),
            "min_ubench_steps": self.min_ubench_steps,
            "max_rollback_steps": self.max_rollback_steps,
            "rollback_rate": round(self.rollback_rate, 6),
            "flags": list(self.flags),
        }


@dataclass(frozen=True)
class FleetHealthReport:
    """Outlier triage over one characterized fleet."""

    n_chips: int
    n_cores: int
    seed: int
    trials: int
    fence_k: float
    #: Fleet-wide per-core histograms (summed over chips).
    idle_limit_counts: dict[int, int]
    ubench_limit_counts: dict[int, int]
    rollback_counts: dict[int, int]
    #: Fence values actually applied (derived, recorded for the report).
    idle_fence_steps: float
    ubench_fence_steps: float
    rollback_rate_fence: float
    chips: tuple[ChipHealth, ...]

    @property
    def outliers(self) -> tuple[str, ...]:
        return tuple(chip.chip_id for chip in self.chips if chip.flags)

    def to_dict(self) -> dict:
        return {
            "kind": "fleet_health",
            "schema": 1,
            "n_chips": self.n_chips,
            "n_cores": self.n_cores,
            "seed": self.seed,
            "trials": self.trials,
            "fence_k": round(self.fence_k, 6),
            "idle_limit_counts": {
                str(k): v for k, v in sorted(self.idle_limit_counts.items())
            },
            "ubench_limit_counts": {
                str(k): v for k, v in sorted(self.ubench_limit_counts.items())
            },
            "rollback_counts": {
                str(k): v for k, v in sorted(self.rollback_counts.items())
            },
            "fences": {
                "idle_steps": round(self.idle_fence_steps, 6),
                "ubench_steps": round(self.ubench_fence_steps, 6),
                "rollback_rate": round(self.rollback_rate_fence, 6),
            },
            "chips": [chip.to_dict() for chip in self.chips],
            "outliers": list(self.outliers),
        }

    def render(self) -> str:
        """Operator-facing triage table."""
        rows = [
            (
                chip.chip_id,
                round(chip.mean_idle_steps, 2),
                round(chip.mean_ubench_steps, 2),
                chip.min_ubench_steps,
                chip.max_rollback_steps,
                round(chip.rollback_rate, 2),
                ",".join(chip.flags) if chip.flags else "ok",
            )
            for chip in self.chips
        ]
        table = ascii_table(
            ("chip", "idle", "ubench", "min_ub", "max_rb", "rb_rate", "health"),
            rows,
            title=(
                f"fleet health: {self.n_chips} chips x {self.n_cores} cores "
                f"(seed {self.seed}, trials {self.trials}, fence k={self.fence_k:g})"
            ),
        )
        lines = [
            table,
            "",
            f"fences: idle < {self.idle_fence_steps:.2f} steps, "
            f"ubench < {self.ubench_fence_steps:.2f} steps, "
            f"rollback rate > {self.rollback_rate_fence:.2f}",
        ]
        if self.outliers:
            lines.append(
                f"outliers ({len(self.outliers)}): {', '.join(self.outliers)}"
            )
        else:
            lines.append("outliers: none")
        return "\n".join(lines)


def assess_from_stats(
    stats: Sequence[ChipStats],
    *,
    seed: int,
    trials: int,
    fence_k: float = DEFAULT_FENCE_K,
) -> FleetHealthReport:
    """Apply the quantile fences to already-collected per-chip stats."""
    if not stats:
        raise ConfigurationError("fleet health needs at least one chip")
    if fence_k <= 0.0:
        raise ConfigurationError(f"fence k must be > 0, got {fence_k}")

    idle_counts: dict[int, int] = {}
    ubench_counts: dict[int, int] = {}
    rollback_counts: dict[int, int] = {}
    for chip in stats:
        for counts, source in (
            (idle_counts, chip.idle_limit_counts),
            (ubench_counts, chip.ubench_limit_counts),
            (rollback_counts, chip.rollback_counts),
        ):
            for steps, count in source.items():
                counts[steps] = counts.get(steps, 0) + count

    def low_fence(counts: dict[int, int]) -> float:
        p10 = quantile_from_counts(counts, 0.10)
        p50 = quantile_from_counts(counts, 0.50)
        return p50 - fence_k * max(float(p50 - p10), 1.0)

    idle_fence_steps = low_fence(idle_counts)
    ubench_fence_steps = low_fence(ubench_counts)

    n_cores = stats[0].n_cores
    rates = [chip.rollback_rate for chip in stats]
    rate_p50 = nearest_rank(rates, 0.50)
    rate_p90 = nearest_rank(rates, 0.90)
    rate_fence = rate_p50 + fence_k * max(rate_p90 - rate_p50, 1.0 / n_cores)

    chips = []
    for chip in stats:
        flags = []
        if chip.mean_idle_steps < idle_fence_steps:
            flags.append("low_idle_limit")
        if chip.mean_ubench_steps < ubench_fence_steps:
            flags.append("low_ubench_limit")
        if chip.rollback_rate > rate_fence:
            flags.append("high_rollback_rate")
        chips.append(
            ChipHealth(
                chip_id=chip.chip_id,
                mean_idle_steps=chip.mean_idle_steps,
                mean_ubench_steps=chip.mean_ubench_steps,
                min_ubench_steps=chip.min_ubench_steps,
                max_rollback_steps=chip.max_rollback_steps,
                rollback_rate=chip.rollback_rate,
                flags=tuple(flags),
            )
        )
    return FleetHealthReport(
        n_chips=len(stats),
        n_cores=n_cores,
        seed=seed,
        trials=trials,
        fence_k=fence_k,
        idle_limit_counts=idle_counts,
        ubench_limit_counts=ubench_counts,
        rollback_counts=rollback_counts,
        idle_fence_steps=idle_fence_steps,
        ubench_fence_steps=ubench_fence_steps,
        rollback_rate_fence=rate_fence,
        chips=tuple(chips),
    )


def assess_fleet(
    n_chips: int,
    *,
    seed: int = 2019,
    trials: int = 4,
    n_cores: int = CORES_PER_CHIP,
    fence_k: float = DEFAULT_FENCE_K,
    noise_sigma_ps: float = 0.1,
) -> FleetHealthReport:
    """Characterize a sampled fleet and triage it (``repro fleet health``)."""
    stats = collect_chip_stats(
        n_chips,
        seed=seed,
        trials=trials,
        n_cores=n_cores,
        noise_sigma_ps=noise_sigma_ps,
    )
    return assess_from_stats(stats, seed=seed, trials=trials, fence_k=fence_k)
