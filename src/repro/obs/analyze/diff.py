"""First-divergence diffing of event streams and run manifests.

The repo's correctness contract is "same seed ⇒ byte-identical events and
manifests".  When that contract breaks, a raw byte compare says *that* two
streams differ but not *where* or *why*.  This module answers both:

* :func:`diff_streams` walks two event streams in lockstep and reports
  the first diverging ``seq`` with an event-type and field-level delta
  plus the shared context window leading up to it;
* :func:`diff_manifests` compares two run manifests and classifies the
  mismatch into a drift taxonomy — ``schema`` / ``experiment`` / ``seed``
  / ``fingerprint`` / ``stream`` / ``result`` / ``metrics`` /
  ``platform`` — so a failing golden test says "the limit table was
  retuned", not "bytes differ".

Streams are loaded tolerantly (a truncated final line from a crashed run
is skipped and counted, see
:func:`repro.obs.sinks.read_jsonl_documents`).  All rendering is
deterministic: labels default to file *names*, never absolute paths.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from ...errors import ConfigurationError
from ..manifest import RunManifest, load_manifest
from ..sinks import read_jsonl_documents

#: Drift kinds in classification priority order: the first present kind is
#: the mismatch's primary explanation (a different seed *implies* a
#: different stream; reporting "stream drift" for it would bury the cause).
DRIFT_PRIORITY = (
    "schema",
    "experiment",
    "seed",
    "fingerprint",
    "stream",
    "result",
    "metrics",
    "platform",
)

#: Shared events shown before the divergence point by default.
DEFAULT_CONTEXT = 3

_END_OF_STREAM = "(end of stream)"


def canonical_line(document: dict) -> str:
    """Canonical single-line JSON of an event document (sorted keys)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FieldDelta:
    """One differing field at the divergence point."""

    name: str
    left: object
    right: object

    def render(self) -> str:
        return f"{self.name}: {self.left!r} != {self.right!r}"


@dataclass(frozen=True)
class Divergence:
    """Where and how two event streams first disagree."""

    #: 0-based position in the stream (equals ``seq`` for intact streams).
    index: int
    #: ``seq`` of the diverging event (left's when present, else right's).
    seq: int | None
    #: "field_delta" | "type_mismatch" | "left_ended" | "right_ended"
    kind: str
    left_type: str
    right_type: str
    field_deltas: tuple[FieldDelta, ...]
    #: Canonical lines of the shared events immediately before.
    context: tuple[str, ...]
    left_line: str
    right_line: str


@dataclass(frozen=True)
class StreamDiff:
    """Outcome of diffing two event streams."""

    left_label: str
    right_label: str
    left_count: int
    right_count: int
    left_skipped: int
    right_skipped: int
    divergence: Divergence | None

    @property
    def identical(self) -> bool:
        """True when every event (and the stream lengths) matched."""
        return self.divergence is None

    def render(self) -> str:
        """Human-readable report (deterministic; no paths beyond labels)."""
        lines = [f"stream diff: {self.left_label} vs {self.right_label}"]
        for side, count, skipped in (
            ("left ", self.left_count, self.left_skipped),
            ("right", self.right_count, self.right_skipped),
        ):
            note = f" ({skipped} truncated line(s) skipped)" if skipped else ""
            lines.append(f"  {side}: {count} event(s){note}")
        if self.divergence is None:
            lines.append("  identical: no divergence")
            return "\n".join(lines)
        div = self.divergence
        seq_text = "?" if div.seq is None else str(div.seq)
        lines.append(
            f"  first divergence at seq {seq_text} "
            f"(index {div.index}, {div.kind})"
        )
        if div.context:
            lines.append(f"  shared context ({len(div.context)} event(s) before):")
            lines.extend(f"    {line}" for line in div.context)
        lines.append(f"  left : {div.left_line}")
        lines.append(f"  right: {div.right_line}")
        if div.kind == "type_mismatch":
            lines.append(
                f"  delta: event type {div.left_type} != {div.right_type}"
            )
        for delta in div.field_deltas:
            lines.append(f"  delta: {div.left_type}.{delta.render()}")
        return "\n".join(lines)


def diff_documents(
    left_docs: Sequence[dict],
    right_docs: Sequence[dict],
    *,
    context: int = DEFAULT_CONTEXT,
    left_label: str = "left",
    right_label: str = "right",
    left_skipped: int = 0,
    right_skipped: int = 0,
) -> StreamDiff:
    """Diff two in-memory event-document sequences (first divergence only)."""
    if context < 0:
        raise ConfigurationError(f"context must be >= 0, got {context}")
    shared = min(len(left_docs), len(right_docs))
    divergence = None
    for index in range(shared):
        left_doc, right_doc = left_docs[index], right_docs[index]
        if left_doc == right_doc:
            continue
        divergence = _describe_pair(
            index, left_doc, right_doc, left_docs[max(0, index - context):index]
        )
        break
    if divergence is None and len(left_docs) != len(right_docs):
        index = shared
        longer = left_docs if len(left_docs) > len(right_docs) else right_docs
        surviving = longer[index]
        kind = "left_ended" if len(left_docs) < len(right_docs) else "right_ended"
        divergence = Divergence(
            index=index,
            seq=_seq_of(surviving),
            kind=kind,
            left_type=(
                _END_OF_STREAM if kind == "left_ended" else _type_of(surviving)
            ),
            right_type=(
                _type_of(surviving) if kind == "left_ended" else _END_OF_STREAM
            ),
            field_deltas=(),
            context=tuple(
                canonical_line(doc)
                for doc in left_docs[max(0, index - context):index]
            ),
            left_line=(
                _END_OF_STREAM
                if kind == "left_ended"
                else canonical_line(surviving)
            ),
            right_line=(
                canonical_line(surviving)
                if kind == "left_ended"
                else _END_OF_STREAM
            ),
        )
    return StreamDiff(
        left_label=left_label,
        right_label=right_label,
        left_count=len(left_docs),
        right_count=len(right_docs),
        left_skipped=left_skipped,
        right_skipped=right_skipped,
        divergence=divergence,
    )


def _type_of(document: dict) -> str:
    return str(document.get("type", "(untyped)"))


def _seq_of(document: dict) -> int | None:
    seq = document.get("seq")
    return seq if isinstance(seq, int) else None


def _describe_pair(
    index: int, left_doc: dict, right_doc: dict, context_docs: Sequence[dict]
) -> Divergence:
    left_type, right_type = _type_of(left_doc), _type_of(right_doc)
    kind = "type_mismatch" if left_type != right_type else "field_delta"
    deltas = tuple(
        FieldDelta(name=key, left=left_doc.get(key), right=right_doc.get(key))
        for key in sorted(set(left_doc) | set(right_doc))
        if left_doc.get(key) != right_doc.get(key)
    )
    seq = _seq_of(left_doc)
    if seq is None:
        seq = _seq_of(right_doc)
    return Divergence(
        index=index,
        seq=seq,
        kind=kind,
        left_type=left_type,
        right_type=right_type,
        field_deltas=deltas,
        context=tuple(canonical_line(doc) for doc in context_docs),
        left_line=canonical_line(left_doc),
        right_line=canonical_line(right_doc),
    )


def diff_streams(
    left_path: str | Path,
    right_path: str | Path,
    *,
    context: int = DEFAULT_CONTEXT,
) -> StreamDiff:
    """Diff two JSONL event streams on disk (tolerant loading)."""
    left_docs, left_skipped = read_jsonl_documents(left_path, tolerant=True)
    right_docs, right_skipped = read_jsonl_documents(right_path, tolerant=True)
    return diff_documents(
        left_docs,
        right_docs,
        context=context,
        left_label=Path(left_path).name,
        right_label=Path(right_path).name,
        left_skipped=left_skipped,
        right_skipped=right_skipped,
    )


def explain_divergence(
    left_path: str | Path,
    right_path: str | Path,
    *,
    context: int = DEFAULT_CONTEXT,
) -> str | None:
    """Rendered first-divergence report, or ``None`` for identical streams.

    The golden tests use this as their failure message: instead of a raw
    byte-compare assertion they print the exact first diverging event.
    """
    diff = diff_streams(left_path, right_path, context=context)
    return None if diff.identical else diff.render()


@dataclass(frozen=True)
class ManifestDiff:
    """Classified mismatch between two run manifests."""

    left_label: str
    right_label: str
    #: Present drift kinds, in :data:`DRIFT_PRIORITY` order.
    drifts: tuple[str, ...]
    details: tuple[str, ...]

    @property
    def identical(self) -> bool:
        return not self.drifts

    @property
    def primary(self) -> str:
        """The highest-priority drift kind ("identical" when none)."""
        return self.drifts[0] if self.drifts else "identical"

    def render(self) -> str:
        lines = [f"manifest diff: {self.left_label} vs {self.right_label}"]
        if not self.drifts:
            lines.append("  identical: no drift")
            return "\n".join(lines)
        lines.append(
            f"  drift: {', '.join(self.drifts)} (primary: {self.primary})"
        )
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


def _manifest_document(source: RunManifest | dict | str | Path) -> tuple[dict, str]:
    """Normalize a manifest argument to ``(document, label)``."""
    if isinstance(source, RunManifest):
        return source.to_dict(), source.experiment_id
    if isinstance(source, dict):
        return source, str(source.get("experiment_id", "(manifest)"))
    path = Path(source)
    # load_manifest validates shape; re-serialize so raw documents from
    # older schemas still classify on the fields this library reads.
    return load_manifest(path).to_dict(), path.name


def _abbreviate(value: object) -> str:
    text = str(value)
    return text[:16] + "…" if len(text) > 17 else text


def diff_manifests(
    left: RunManifest | dict | str | Path,
    right: RunManifest | dict | str | Path,
) -> ManifestDiff:
    """Compare two manifests and classify every differing dimension."""
    left_doc, left_label = _manifest_document(left)
    right_doc, right_label = _manifest_document(right)

    checks: dict[str, tuple[object, object]] = {
        "schema": (left_doc.get("schema"), right_doc.get("schema")),
        "experiment": (
            left_doc.get("experiment_id"),
            right_doc.get("experiment_id"),
        ),
        "seed": (left_doc.get("seed"), right_doc.get("seed")),
        "fingerprint": (
            left_doc.get("limits_fingerprint"),
            right_doc.get("limits_fingerprint"),
        ),
        "result": (left_doc.get("result_metrics"), right_doc.get("result_metrics")),
        "metrics": (
            left_doc.get("metrics_summary"),
            right_doc.get("metrics_summary"),
        ),
        "platform": (left_doc.get("platform"), right_doc.get("platform")),
    }
    drifts = []
    details = []
    for kind in DRIFT_PRIORITY:
        if kind == "stream":
            count_pair = (left_doc.get("event_count"), right_doc.get("event_count"))
            sha_pair = (left_doc.get("events_sha256"), right_doc.get("events_sha256"))
            if count_pair[0] != count_pair[1] or sha_pair[0] != sha_pair[1]:
                drifts.append("stream")
                if count_pair[0] != count_pair[1]:
                    details.append(
                        f"stream: event_count {count_pair[0]} != {count_pair[1]}"
                    )
                if sha_pair[0] != sha_pair[1]:
                    details.append(
                        f"stream: events_sha256 {_abbreviate(sha_pair[0])} != "
                        f"{_abbreviate(sha_pair[1])}"
                    )
            continue
        left_value, right_value = checks[kind]
        if left_value != right_value:
            drifts.append(kind)
            if kind in ("result", "metrics"):
                keys = sorted(
                    key
                    for key in set(left_value or {}) | set(right_value or {})
                    if (left_value or {}).get(key) != (right_value or {}).get(key)
                )
                details.append(f"{kind}: {len(keys)} differing key(s): "
                               + ", ".join(keys[:8])
                               + ("…" if len(keys) > 8 else ""))
            else:
                details.append(
                    f"{kind}: {_abbreviate(left_value)} != {_abbreviate(right_value)}"
                )
    return ManifestDiff(
        left_label=left_label,
        right_label=right_label,
        drifts=tuple(drifts),
        details=tuple(details),
    )
