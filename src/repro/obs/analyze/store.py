"""The run registry: observed-run artifacts indexed on disk by manifest.

A :class:`RunStore` is a directory of ``<run_id>.events.jsonl`` +
``<run_id>.manifest.json`` pairs plus one canonical ``index.json``
summarizing every registered run (experiment id, seed, manifest schema,
limit-table fingerprint, events sha256, event count).  Runs enter via
:meth:`RunStore.put`, which *verifies* the event stream against the
manifest digest at ingest — stream drift is caught at the door, not at
analysis time.

Determinism rules (the same ones as the write side):

* the index records file *names* relative to the store root — no
  absolute paths, so a store relocates and byte-compares cleanly;
* run ids default to ``<experiment>@s<seed>-<sha8>`` — a pure function
  of the artifact content, so re-registering an identical run is a
  no-op overwrite, never a duplicate;
* :meth:`RunStore.prune` orders runs by natural ``(experiment, seed,
  sha)`` keys parsed out of the default run-id shape (the registry has no
  clock to order by), falling back to lexicographic order for custom ids.

Segmented runs (written by
:class:`~repro.obs.stream.rotate.RotatingJsonlSink`) register through the
same :meth:`RunStore.put`: the segment index is verified against the
manifest digest, then the segments are *compacted* into the store's
standard single-file layout — byte-identical to the logical stream, so
the digest and every downstream reader are unchanged.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from ...errors import ConfigurationError
from ..manifest import RunManifest, load_manifest, sha256_hex
from ..sinks import read_jsonl_documents

#: Canonical index file name inside the store root.
INDEX_FILE = "index.json"

#: Index document schema version.
STORE_SCHEMA = 1

_MANIFEST_SUFFIX = ".manifest.json"
_EVENTS_SUFFIX = ".events.jsonl"

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.@+-]*$")

#: The default content-derived run-id shape (see :func:`default_run_id`).
_RUN_ID_NATURAL = re.compile(r"^(?P<exp>.+)@s(?P<seed>\d+)-(?P<sha>[A-Za-z0-9]+)$")


def natural_run_key(run_id: str) -> tuple[int, str]:
    """Retention sort key: numeric seed first, run id as tiebreak.

    Default run ids ``<experiment>@s<seed>-<sha8>`` sort by the *numeric*
    seed (so ``s9`` < ``s10`` < ``s100``, where plain lexicographic order
    would put ``s10`` first); custom ids fall back to lexicographic order
    and sort before any default-shaped id.
    """
    match = _RUN_ID_NATURAL.match(run_id)
    if match:
        return (int(match.group("seed")), run_id)
    return (-1, run_id)


@dataclass(frozen=True)
class RunRecord:
    """One registered run, as indexed (a manifest digest, not the manifest)."""

    run_id: str
    experiment_id: str
    seed: int
    schema: int
    limits_fingerprint: str
    events_sha256: str
    event_count: int
    events_file: str
    manifest_file: str
    #: Truncated trailing lines observed in the stream (crashed run).
    skipped_lines: int = 0

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "schema": self.schema,
            "limits_fingerprint": self.limits_fingerprint,
            "events_sha256": self.events_sha256,
            "event_count": self.event_count,
            "events_file": self.events_file,
            "manifest_file": self.manifest_file,
            "skipped_lines": self.skipped_lines,
        }


@dataclass(frozen=True)
class LoadedRun:
    """One run loaded back out of the store."""

    record: RunRecord
    manifest: RunManifest
    documents: tuple[dict, ...]
    skipped_lines: int


def default_run_id(manifest: RunManifest) -> str:
    """Content-derived run id: ``<experiment>@s<seed>-<sha8>``."""
    sha8 = manifest.events_sha256[:8] if manifest.events_sha256 else "noevents"
    return f"{manifest.experiment_id}@s{manifest.seed}-{sha8}"


class RunStore:
    """Directory-backed registry of observed runs."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILE

    def events_path(self, run_id: str) -> Path:
        return self.root / f"{run_id}{_EVENTS_SUFFIX}"

    def manifest_path(self, run_id: str) -> Path:
        return self.root / f"{run_id}{_MANIFEST_SUFFIX}"

    def put(
        self,
        manifest_path: str | Path,
        events_path: str | Path | None = None,
        *,
        run_id: str | None = None,
    ) -> RunRecord:
        """Register one observed run, verifying the stream digest.

        ``events_path`` defaults to the manifest's sibling
        ``<name>.events.jsonl``.  The stream's sha256 must match the
        manifest's ``events_sha256`` (drift at ingest is an error, not a
        record).  Registering an existing ``run_id`` overwrites it.
        """
        manifest_source = Path(manifest_path)
        manifest = load_manifest(manifest_source)
        if events_path is None:
            name = manifest_source.name
            if not name.endswith(_MANIFEST_SUFFIX):
                raise ConfigurationError(
                    f"cannot infer the event stream next to {manifest_source}; "
                    f"pass events_path explicitly"
                )
            events_path = manifest_source.with_name(
                name[: -len(_MANIFEST_SUFFIX)] + _EVENTS_SUFFIX
            )
        from ..stream.rotate import (
            compact_segments,
            is_segment_index,
            segment_index_path,
            segmented_events_sha256,
        )

        events_source = Path(events_path)
        segment_index: Path | None = None
        if is_segment_index(events_source):
            segment_index = events_source
        elif not events_source.exists() and segment_index_path(events_source).exists():
            segment_index = segment_index_path(events_source)
        if segment_index is not None:
            digest, _ = segmented_events_sha256(segment_index)
            if manifest.events_sha256 and digest != manifest.events_sha256:
                raise ConfigurationError(
                    f"stream drift at ingest: segments of {segment_index} do "
                    f"not hash to the manifest's events_sha256 "
                    f"({manifest.events_sha256[:16]}…)"
                )
        elif not events_source.exists():
            raise ConfigurationError(f"no event stream at {events_source}")
        else:
            stream_bytes = events_source.read_bytes()
            if (
                manifest.events_sha256
                and sha256_hex(stream_bytes) != manifest.events_sha256
            ):
                raise ConfigurationError(
                    f"stream drift at ingest: {events_source} does not hash to "
                    f"the manifest's events_sha256 ({manifest.events_sha256[:16]}…)"
                )
        resolved_id = run_id if run_id is not None else default_run_id(manifest)
        if not _RUN_ID_PATTERN.match(resolved_id):
            raise ConfigurationError(
                f"run id {resolved_id!r} must match {_RUN_ID_PATTERN.pattern}"
            )
        self.manifest_path(resolved_id).write_bytes(
            manifest_source.read_bytes()
        )
        if segment_index is not None:
            # Normalize to the store's single-file layout; byte-identical
            # to the logical stream, so the digest is unchanged.
            compact_segments(segment_index, self.events_path(resolved_id))
        else:
            self.events_path(resolved_id).write_bytes(stream_bytes)
        self.rebuild_index()
        return self._record_for(resolved_id)

    def run_ids(self) -> tuple[str, ...]:
        """Every registered run id, sorted."""
        return tuple(
            sorted(
                path.name[: -len(_MANIFEST_SUFFIX)]
                for path in self.root.glob(f"*{_MANIFEST_SUFFIX}")
            )
        )

    def _record_for(self, run_id: str) -> RunRecord:
        manifest = load_manifest(self.manifest_path(run_id))
        events_file = self.events_path(run_id)
        skipped = 0
        if events_file.exists():
            skipped = _trailing_truncation(events_file)
        return RunRecord(
            run_id=run_id,
            experiment_id=manifest.experiment_id,
            seed=manifest.seed,
            schema=_manifest_schema(self.manifest_path(run_id)),
            limits_fingerprint=manifest.limits_fingerprint,
            events_sha256=manifest.events_sha256,
            event_count=manifest.event_count,
            events_file=events_file.name,
            manifest_file=self.manifest_path(run_id).name,
            skipped_lines=skipped,
        )

    def records(self) -> tuple[RunRecord, ...]:
        """Indexed records for every registered run, sorted by run id."""
        return tuple(self._record_for(run_id) for run_id in self.run_ids())

    def rebuild_index(self) -> dict:
        """Re-scan the store and (re)write the canonical ``index.json``."""
        document = {
            "kind": "obs_store_index",
            "schema": STORE_SCHEMA,
            "runs": {record.run_id: record.to_dict() for record in self.records()},
        }
        self.index_path.write_text(
            json.dumps(document, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return document

    def load(self, run_id: str) -> LoadedRun:
        """Load one run's manifest and event documents (tolerant read)."""
        manifest_file = self.manifest_path(run_id)
        if not manifest_file.exists():
            known = ", ".join(self.run_ids()) or "(store is empty)"
            raise ConfigurationError(
                f"no run {run_id!r} in {self.root.name}; known: {known}"
            )
        documents, skipped = read_jsonl_documents(
            self.events_path(run_id), tolerant=True
        )
        return LoadedRun(
            record=self._record_for(run_id),
            manifest=load_manifest(manifest_file),
            documents=tuple(documents),
            skipped_lines=skipped,
        )

    def prune(self, keep: int, *, experiment_id: str | None = None) -> tuple[str, ...]:
        """Drop all but the naturally-last ``keep`` runs per experiment.

        Returns the removed run ids.  With ``experiment_id`` only that
        experiment's runs are considered.  Retention order is
        :func:`natural_run_key` — numeric-seed order for default run ids
        (``s9`` < ``s10`` < ``s100``), lexicographic for custom ids —
        deterministic by design: there is no clock, so callers wanting
        retention-by-recency should encode an ordinal in their seeds or
        run ids.
        """
        if keep < 0:
            raise ConfigurationError(f"keep must be >= 0, got {keep}")
        by_experiment: dict[str, list[str]] = {}
        for record in self.records():
            if experiment_id is not None and record.experiment_id != experiment_id:
                continue
            by_experiment.setdefault(record.experiment_id, []).append(record.run_id)
        removed = []
        for run_ids in by_experiment.values():
            ordered = sorted(run_ids, key=natural_run_key)
            for run_id in ordered[: max(0, len(run_ids) - keep)]:
                self.manifest_path(run_id).unlink()
                self.events_path(run_id).unlink(missing_ok=True)
                removed.append(run_id)
        self.rebuild_index()
        return tuple(sorted(removed))


def _manifest_schema(path: Path) -> int:
    """The raw ``schema`` field of a manifest document on disk."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    schema = document.get("schema")
    return schema if isinstance(schema, int) else 0


def _trailing_truncation(events_path: Path) -> int:
    """0 or 1: whether the stream's final line fails to parse."""
    lines = [
        line
        for line in events_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not lines:
        return 0
    try:
        json.loads(lines[-1])
    except json.JSONDecodeError:
        return 1
    return 0
