"""Deterministic regression-report rendering (``repro obs report``).

Assembles one digest document over a :class:`~repro.obs.analyze.store.RunStore`
— registry contents, per-metric history with regression flags, span
profiles (sentinel-aware), optional bench wall series and fleet health —
and renders it as canonical JSON or markdown.  Byte-identical across
repeated invocations at the same inputs: run ids and file names only, no
wall clock, no hostnames, no absolute paths.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from ...errors import ConfigurationError
from .fleet_health import FleetHealthReport
from .history import (
    MetricSeries,
    RegressionFlag,
    bench_wall_series,
    build_history,
    flag_improvements,
    flag_regressions,
    span_wall_stats,
)
from .store import RunStore

#: Report document schema version.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class ObsReport:
    """The assembled digest (document + the pieces it was built from)."""

    document: dict
    series: tuple[MetricSeries, ...]
    flags: tuple[RegressionFlag, ...]
    improvements: tuple[RegressionFlag, ...] = ()


def build_report(
    store: RunStore,
    *,
    threshold: float = 2.0,
    bench_paths: Sequence[str | Path] = (),
    fleet_health: FleetHealthReport | None = None,
    metrics: Sequence[str] | None = None,
) -> ObsReport:
    """Assemble the digest document over every registered run."""
    if threshold <= 0.0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    records = store.records()
    series = list(build_history(store, metrics=metrics))
    series.extend(bench_wall_series(bench_paths))
    flags = flag_regressions(series, threshold=threshold)
    improvements = flag_improvements(series, threshold=threshold)

    spans = {}
    for record in records:
        loaded = store.load(record.run_id)
        stats = span_wall_stats(loaded.documents)
        stats = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in stats.items()
        }
        if loaded.skipped_lines:
            stats["skipped_lines"] = loaded.skipped_lines
        spans[record.run_id] = stats

    document: dict = {
        "kind": "obs_report",
        "schema": REPORT_SCHEMA,
        "threshold": round(threshold, 6),
        "runs": [record.to_dict() for record in records],
        "history": {
            one.name: {
                "kind": one.kind,
                "points": [
                    {"label": point.label, "value": round(point.value, 6)}
                    for point in one.points
                ],
            }
            for one in series
        },
        "regressions": [
            {
                "name": flag.name,
                "kind": flag.kind,
                "baseline": round(flag.baseline, 6),
                "latest": round(flag.latest, 6),
                "delta": round(flag.delta, 6),
                "direction": flag.direction,
            }
            for flag in flags
        ],
        "improvements": [
            {
                "name": flag.name,
                "kind": flag.kind,
                "baseline": round(flag.baseline, 6),
                "latest": round(flag.latest, 6),
                "delta": round(flag.delta, 6),
                "direction": flag.direction,
            }
            for flag in improvements
        ],
        "spans": spans,
    }
    if fleet_health is not None:
        document["fleet_health"] = fleet_health.to_dict()
    return ObsReport(
        document=document,
        series=tuple(series),
        flags=tuple(flags),
        improvements=tuple(improvements),
    )


def render_json(report: ObsReport) -> str:
    """Canonical JSON form (sorted keys, trailing newline)."""
    return json.dumps(report.document, sort_keys=True, indent=2) + "\n"


def render_markdown(report: ObsReport) -> str:
    """Markdown digest of the report document."""
    doc = report.document
    lines = ["# repro.obs report", ""]

    runs = doc["runs"]
    lines.append(f"## Run registry ({len(runs)} run(s))")
    lines.append("")
    if runs:
        lines.append("| run | experiment | seed | events | sha256 | skipped |")
        lines.append("|---|---|---:|---:|---|---:|")
        for run in runs:
            lines.append(
                f"| {run['run_id']} | {run['experiment_id']} | {run['seed']} "
                f"| {run['event_count']} | `{run['events_sha256'][:12]}` "
                f"| {run['skipped_lines']} |"
            )
    else:
        lines.append("(no runs registered)")
    truncated = [run["run_id"] for run in runs if run["skipped_lines"]]
    if truncated:
        lines.append("")
        lines.append(
            f"**warning**: {len(truncated)} run(s) with truncated trailing "
            "lines (tolerant read): " + ", ".join(truncated)
        )
    lines.append("")

    lines.append("## Metrics history")
    lines.append("")
    if report.series:
        lines.append("| metric | kind | n | first | latest |")
        lines.append("|---|---|---:|---:|---:|")
        for one in report.series:
            lines.append(
                f"| {one.name} | {one.kind} | {len(one.points)} "
                f"| {one.first:.6g} | {one.latest:.6g} |"
            )
    else:
        lines.append("(no metric series)")
    lines.append("")

    lines.append(f"## Regressions (threshold {doc['threshold']:.2f}x)")
    lines.append("")
    if report.flags:
        for flag in report.flags:
            lines.append(f"- **{flag.name}**: {flag.render()}")
    else:
        lines.append("none")
    lines.append("")

    lines.append(f"## Improvements (threshold {doc['threshold']:.2f}x)")
    lines.append("")
    if report.improvements:
        for flag in report.improvements:
            lines.append(f"- **{flag.name}**: {flag.render()}")
    else:
        lines.append("none")
    lines.append("")

    lines.append("## Span profile")
    lines.append("")
    spans = doc["spans"]
    if spans:
        lines.append("| run | spans | profiled | wall total (s) |")
        lines.append("|---|---:|---:|---:|")
        for run_id in sorted(spans):
            stats = spans[run_id]
            wall = stats.get("wall_total_s")
            wall_text = f"{wall:.6g}" if wall is not None else "—"
            lines.append(
                f"| {run_id} | {stats['spans']} | {stats['profiled']} "
                f"| {wall_text} |"
            )
    else:
        lines.append("(no runs)")
    lines.append("")

    if "fleet_health" in doc:
        health = doc["fleet_health"]
        lines.append("## Fleet health")
        lines.append("")
        lines.append(
            f"{health['n_chips']} chips x {health['n_cores']} cores, "
            f"fence k={health['fence_k']:g}"
        )
        lines.append("")
        outliers = health["outliers"]
        if outliers:
            lines.append(f"outliers ({len(outliers)}): " + ", ".join(outliers))
        else:
            lines.append("outliers: none")
        lines.append("")
    return "\n".join(lines)
