"""Exact, order-invariant float accumulation (the merge substrate).

Plain ``total += value`` accumulation is *not* associative in float
arithmetic: ``(a + b) + c`` and ``a + (b + c)`` can differ in the last
ulp, so two workers folding partial sums in different chunkings produce
subtly different totals — fatal for the streaming layer's contract that
fleet rollups are byte-identical regardless of chunk size or worker
scheduling.

:class:`ExactSum` fixes this with Shewchuk's error-free transformation
(the algorithm behind :func:`math.fsum`): the running sum is kept as a
list of non-overlapping float *partials* whose exact mathematical sum
equals the exact sum of every value ever added.  Adding a value is
error-free, merging two accumulators is error-free (add the other's
partials), and :meth:`value` rounds the exact rational sum once, at read
time, via :class:`fractions.Fraction`.  The rounded result is therefore a
pure function of the input **multiset** — independent of insertion order
and of how the inputs were partitioned across accumulators.
"""

from __future__ import annotations

import math
from fractions import Fraction

from ...errors import ConfigurationError


class ExactSum:
    """Error-free streaming float sum; mergeable and order-invariant."""

    __slots__ = ("_partials",)

    def __init__(self):
        self._partials: list[float] = []

    def add(self, value: float) -> None:
        """Accumulate ``value`` exactly (no representable error is lost)."""
        x = float(value)
        if math.isnan(x) or math.isinf(x):
            raise ConfigurationError(
                f"cannot accumulate non-finite value {value!r}"
            )
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            high = x + y
            low = y - (high - x)
            if low:
                partials[i] = low
                i += 1
            x = high
        partials[i:] = [x]

    def merge(self, other: ExactSum) -> None:
        """Fold another accumulator in; exactness makes this associative."""
        for partial in other._partials:
            self.add(partial)

    def value(self) -> float:
        """The correctly-rounded float of the exact accumulated sum.

        Rounding happens exactly once, here, over the exact rational sum
        of the partials — so the result is a pure function of the input
        multiset, never of the accumulation or merge order.
        """
        if not self._partials:
            return 0.0
        if len(self._partials) == 1:
            return self._partials[0]
        return float(sum(Fraction(partial) for partial in self._partials))

    def to_state(self) -> list[float]:
        """Canonical JSON-native state: the unique greedy float expansion.

        The in-memory partials list is order-dependent (only its exact
        rational sum is not), so serializing it raw would leak insertion
        order into state bytes.  Instead the exact sum is re-expanded
        canonically: repeatedly extract the correctly-rounded float of
        the remainder and subtract it exactly.  The result is a pure
        function of the accumulated multiset, and re-adding the
        components reconstructs the exact sum.
        """
        remainder = sum((Fraction(p) for p in self._partials), Fraction(0))
        components: list[float] = []
        while remainder:
            component = float(remainder)
            if component == 0.0:
                break  # residual below float range; cannot occur for
                # sums of representable floats, guarded anyway
            components.append(component)
            remainder -= Fraction(component)
        return components

    @classmethod
    def from_state(cls, state: list[float]) -> ExactSum:
        """Rebuild from :meth:`to_state` output (re-normalizes the partials)."""
        out = cls()
        for partial in state:
            out.add(float(partial))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactSum({self.value()!r})"


class MergeableStat:
    """Streaming count/sum/min/max with an order-invariant merge.

    Every component is a commutative, associative fold over the sample
    multiset: the count is an integer, the sum is an :class:`ExactSum`,
    and min/max are lattice operations — so any partitioning of the
    samples across instances folds to the same state.
    """

    __slots__ = ("count", "_sum", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._sum = ExactSum()
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum.add(value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: MergeableStat) -> None:
        self.count += other.count
        self._sum.merge(other._sum)
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def total(self) -> float:
        """Correctly-rounded sum of every sample."""
        return self._sum.value()

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ConfigurationError("no samples accumulated")
        return self.total / self.count

    def to_state(self) -> dict:
        return {
            "count": self.count,
            "sum": self._sum.to_state(),
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_state(cls, state: dict) -> MergeableStat:
        out = cls()
        out.count = int(state["count"])
        out._sum = ExactSum.from_state(state["sum"])
        out.minimum = float(state["min"])
        out.maximum = float(state["max"])
        return out
