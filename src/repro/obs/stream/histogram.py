"""Exact mergeable histograms (fixed or exponential bucket layouts).

A :class:`MergeableHistogram` is the bucketed complement of
:class:`~repro.obs.stream.sketch.QuantileSketch`: the caller fixes the
bucket bounds up front, and the state — integer per-bucket counts plus an
exact :class:`~repro.obs.stream.exact.MergeableStat` — is *exact*, not
approximate.  Because every component is a commutative, associative fold
over the observation multiset (integer adds, error-free sum, min/max),
merging partial histograms from any chunking or worker scheduling yields
the same state as observing the union stream directly.

Two histograms merge only if their bucket bounds are identical — the
bounds are part of the type, the counts are the state.  Use
:func:`exponential_bounds` to build log-spaced layouts for quantities
spanning orders of magnitude (latencies, iteration counts).
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

from ...errors import ConfigurationError
from .exact import MergeableStat


def exponential_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: ``start * factor**i`` for i < count."""
    if start <= 0.0:
        raise ConfigurationError(f"start must be > 0, got {start}")
    if factor <= 1.0:
        raise ConfigurationError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


class MergeableHistogram:
    """Fixed-bound histogram with an exact, order-invariant merge."""

    __slots__ = ("_bounds", "_counts", "_stat")

    def __init__(self, buckets: Sequence[float]):
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket bound")
        upper_bounds = tuple(float(b) for b in buckets)
        if list(upper_bounds) != sorted(set(upper_bounds)):
            raise ConfigurationError("bucket bounds must be strictly increasing")
        self._bounds = upper_bounds
        # One overflow bucket past the last bound.
        self._counts = [0] * (len(upper_bounds) + 1)
        self._stat = MergeableStat()

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        return self._stat.count

    @property
    def sum(self) -> float:
        """Correctly-rounded exact sum of every observation."""
        return self._stat.total

    @property
    def mean(self) -> float:
        return self._stat.mean

    @property
    def minimum(self) -> float:
        return self._stat.minimum

    @property
    def maximum(self) -> float:
        return self._stat.maximum

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket (observations <= bound)."""
        value = float(value)
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._stat.add(value)

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return tuple(self._counts)

    def merge(self, other: MergeableHistogram) -> None:
        """Fold another histogram in (requires identical bounds)."""
        if self._bounds != other._bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self._stat.merge(other._stat)

    def quantile(self, q: float, *, interpolate: bool = False) -> float:
        """Nearest-rank quantile over the bucket counts.

        Default: the covering bucket's upper bound (``inf`` when the rank
        falls in the overflow bucket) — a conservative "value <= x" answer.
        With ``interpolate=True``: linear interpolation inside the covering
        bucket, with the bucket's lower edge clamped to the observed
        minimum and the overflow bucket spanning up to the observed
        maximum — a point estimate that is always finite.
        """
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        total = self._stat.count
        if total == 0:
            raise ConfigurationError("histogram is empty")
        target = q * total
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target and count:
                if not interpolate:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return float("inf")
                lower = self._bounds[index - 1] if index > 0 else self._stat.minimum
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else self._stat.maximum
                )
                lower = max(lower, self._stat.minimum)
                upper = min(upper, self._stat.maximum)
                if upper <= lower:
                    return lower
                # Position of the target rank inside this bucket's count.
                fraction = (target - (seen - count)) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return float("inf") if not interpolate else self._stat.maximum

    def to_state(self) -> dict:
        """Canonical JSON-native state."""
        return {
            "bounds": list(self._bounds),
            "counts": list(self._counts),
            "stat": self._stat.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> MergeableHistogram:
        out = cls(state["bounds"])
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(out._counts):
            raise ConfigurationError(
                f"state has {len(counts)} buckets, bounds imply {len(out._counts)}"
            )
        out._counts = counts
        out._stat = MergeableStat.from_state(state["stat"])
        return out
