"""Segmented JSONL event streams: the rotating sink and its readers.

A :class:`RotatingJsonlSink` writes the same canonical event lines as
:class:`~repro.obs.sinks.JsonlFileSink`, but rotates to a new segment
file every ``max_events_per_segment`` events, so no single file grows
unboundedly with run length.  For a logical stream path ``X`` it writes:

* ``X.seg0000``, ``X.seg0001``, … — the segment files, each a plain
  JSONL fragment (the concatenation of all segments is byte-identical to
  what the single-file sink would have written);
* ``X.segments.json`` — the segment index: per-segment event counts and
  ``sha256`` digests plus the combined ``events_sha256`` over the
  logical concatenation.

Because the combined digest equals the digest of the equivalent single
file, run manifests are byte-identical whether a run rotated or not, and
``RunStore.put`` can verify + compact a segmented run into its standard
single-file layout without touching the manifest.

Everything here is deterministic: rotation is keyed on the event count
(never on wall time or file size heuristics that could vary with JSON
float formatting platform quirks), and the index is canonical JSON.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ...errors import ConfigurationError
from ..events import ObsEvent
from ..sinks import EventSink, event_to_json_line

#: Segment index schema version (bump on incompatible shape changes).
SEGMENT_INDEX_SCHEMA = 1

#: Suffix identifying a segment-index file next to a logical stream path.
SEGMENT_INDEX_SUFFIX = ".segments.json"

#: Default rotation threshold, in events per segment.
DEFAULT_EVENTS_PER_SEGMENT = 8192


def segment_index_path(logical_path: str | Path) -> Path:
    """The index path for logical stream path ``X``: ``X.segments.json``."""
    logical = Path(logical_path)
    return logical.with_name(logical.name + SEGMENT_INDEX_SUFFIX)


def is_segment_index(path: str | Path) -> bool:
    """True when ``path`` names a segment index file."""
    return str(path).endswith(SEGMENT_INDEX_SUFFIX)


class RotatingJsonlSink(EventSink):
    """Event sink that segments the stream every N events."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_events_per_segment: int = DEFAULT_EVENTS_PER_SEGMENT,
    ):
        if max_events_per_segment < 1:
            raise ConfigurationError(
                f"max_events_per_segment must be >= 1, got {max_events_per_segment}"
            )
        self._logical = Path(path)
        self._max_per_segment = max_events_per_segment
        self._segments: list[dict] = []
        self._combined = hashlib.sha256()
        self._count = 0
        self._closed = False
        self._handle = None
        self._segment_hash = hashlib.sha256()
        self._segment_count = 0
        self._open_segment()

    @property
    def path(self) -> Path:
        """The logical stream path (never created; segments sit beside it)."""
        return self._logical

    @property
    def index_path(self) -> Path:
        return segment_index_path(self._logical)

    @property
    def count(self) -> int:
        """Events written so far, across all segments."""
        return self._count

    @property
    def segment_count(self) -> int:
        """Segments started so far (including the one being written)."""
        return len(self._segments) + (1 if self._handle is not None else 0)

    def _segment_name(self, index: int) -> str:
        return f"{self._logical.name}.seg{index:04d}"

    def _open_segment(self) -> None:
        name = self._segment_name(len(self._segments))
        target = self._logical.with_name(name)
        try:
            self._handle = target.open("w", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open event segment {target}: {exc}"
            ) from exc
        self._segment_hash = hashlib.sha256()
        self._segment_count = 0

    def _finish_segment(self) -> None:
        assert self._handle is not None
        self._handle.close()
        self._segments.append(
            {
                "file": self._segment_name(len(self._segments)),
                "events": self._segment_count,
                "sha256": self._segment_hash.hexdigest(),
            }
        )
        self._handle = None

    def emit(self, event: ObsEvent) -> None:
        if self._closed:
            raise ConfigurationError(f"sink {self._logical} is closed")
        data = (event_to_json_line(event) + "\n").encode("utf-8")
        assert self._handle is not None
        self._handle.write(data.decode("utf-8"))
        self._segment_hash.update(data)
        self._combined.update(data)
        self._segment_count += 1
        self._count += 1
        if self._segment_count >= self._max_per_segment:
            self._finish_segment()
            self._open_segment()

    def close(self) -> None:
        if self._closed:
            return
        self._finish_segment()
        index = {
            "kind": "jsonl_segments",
            "schema": SEGMENT_INDEX_SCHEMA,
            "stream": self._logical.name,
            "event_count": self._count,
            "events_sha256": self._combined.hexdigest(),
            "segments": self._segments,
        }
        self.index_path.write_text(
            json.dumps(index, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        self._closed = True


def load_segment_index(path: str | Path) -> dict:
    """Read + validate a segment index written by the rotating sink."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no segment index at {source}")
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{source} is not valid JSON: {exc}") from exc
    if document.get("kind") != "jsonl_segments":
        raise ConfigurationError(
            f"expected a jsonl_segments document, got {document.get('kind')!r}"
        )
    schema = document.get("schema")
    if not isinstance(schema, int) or schema > SEGMENT_INDEX_SCHEMA:
        raise ConfigurationError(
            f"unsupported segment index schema {schema!r} (this library reads "
            f"<= {SEGMENT_INDEX_SCHEMA})"
        )
    if not isinstance(document.get("segments"), list):
        raise ConfigurationError(f"malformed segment index {source}: no segments")
    return document


def iter_segment_paths(index_path: str | Path) -> list[tuple[Path, dict]]:
    """(path, entry) for each segment in index order, existence-checked."""
    source = Path(index_path)
    index = load_segment_index(source)
    out = []
    for entry in index["segments"]:
        segment = source.parent / str(entry["file"])
        if not segment.exists():
            raise ConfigurationError(
                f"segment index {source} references missing segment {segment}"
            )
        out.append((segment, entry))
    return out


def segmented_events_sha256(index_path: str | Path) -> tuple[str, int]:
    """(combined sha256, event count) of the logical stream, verified.

    Re-hashes every segment's bytes, checks each against its index entry,
    and returns the digest of the logical concatenation — which equals
    the digest of the equivalent single-file stream.
    """
    source = Path(index_path)
    index = load_segment_index(source)
    combined = hashlib.sha256()
    for segment, entry in iter_segment_paths(source):
        data = segment.read_bytes()
        actual = hashlib.sha256(data).hexdigest()
        if actual != str(entry["sha256"]):
            raise ConfigurationError(
                f"segment {segment} sha256 mismatch: index says "
                f"{entry['sha256']}, file hashes to {actual}"
            )
        combined.update(data)
    digest = combined.hexdigest()
    if digest != str(index["events_sha256"]):
        raise ConfigurationError(
            f"segment index {source} combined sha256 mismatch: index says "
            f"{index['events_sha256']}, segments hash to {digest}"
        )
    return digest, int(index["event_count"])


def compact_segments(index_path: str | Path, out_path: str | Path) -> Path:
    """Rewrite a segmented stream as one file, byte-identical to the
    logical concatenation (so ``events_sha256`` is unchanged)."""
    source = Path(index_path)
    target = Path(out_path)
    combined = hashlib.sha256()
    index = load_segment_index(source)
    with target.open("wb") as handle:
        for segment, _ in iter_segment_paths(source):
            data = segment.read_bytes()
            combined.update(data)
            handle.write(data)
    if combined.hexdigest() != str(index["events_sha256"]):
        raise ConfigurationError(
            f"compaction of {source} produced sha {combined.hexdigest()}, "
            f"index says {index['events_sha256']}"
        )
    return target


def read_segmented_documents(
    index_path: str | Path, *, tolerant: bool = False
) -> tuple[list[dict], int]:
    """Parse a segmented stream into raw JSON documents.

    Mirrors :func:`repro.obs.sinks.read_jsonl_documents`: with
    ``tolerant=True`` a malformed *final* line of the *final* segment is
    skipped and counted; malformed lines anywhere else raise.
    """
    source = Path(index_path)
    paths = iter_segment_paths(source)
    documents: list[dict] = []
    skipped = 0
    for position, (segment, _) in enumerate(paths):
        last_segment = position == len(paths) - 1
        payload = [
            (lineno, stripped)
            for lineno, raw in enumerate(
                segment.read_text(encoding="utf-8").splitlines(), start=1
            )
            if (stripped := raw.strip())
        ]
        for line_position, (lineno, line) in enumerate(payload):
            try:
                documents.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if (
                    tolerant
                    and last_segment
                    and line_position == len(payload) - 1
                ):
                    skipped += 1
                    break
                raise ConfigurationError(
                    f"{segment}:{lineno}: not valid JSON: {exc}"
                ) from exc
    return documents, skipped
