"""Deterministic, mergeable quantile sketch (log-bucketed, compacting).

:class:`QuantileSketch` answers p50/p95/p99 queries over an unbounded
value stream in bounded memory with a *documented relative error bound*,
and — unlike randomized compaction sketches — its state is a pure
function of the observed **multiset**:

* a positive value ``v`` lands in log-bucket ``floor(log(v) / log(γ₀))``;
  negatives mirror into a second store, zeros (and magnitudes below
  ``min_magnitude``) into an exact counter;
* bucket counts are integers, so inserting and merging are commutative
  and associative;
* **compaction** halves the resolution (``γ → γ²``, bucket index
  ``i → i >> 1``) whenever the number of live buckets exceeds
  ``max_buckets``.  The trigger is the deterministic bucket-count rule —
  never a random coin, never the host clock — so the same inputs always
  produce the same sketch bytes.

Order-invariance proof (the property the fleet rollup golden tests pin):
let ``r(M)`` be the minimal resolution level at which multiset ``M``
fits in ``max_buckets``.  Coarsening only merges buckets, so the live
bucket count is non-increasing in the level, and buckets never empty, so
``M ⊆ N ⇒ r(M) ≤ r(N)``.  A sketch that has streamed ``M`` therefore
sits at exactly level ``r(M)`` with the level-``r(M)`` projection of
``M``'s bucket counts.  Merging two sketches coarsens both to the common
level ``max(r(A), r(B)) ≤ r(A ∪ B)``, adds counts, and re-compacts —
landing at level ``r(A ∪ B)`` with the union's counts, i.e. the same
state a single sketch streaming ``A ∪ B`` in any order reaches.  Every
partitioning of a sample stream across workers and chunks folds to
byte-identical state.

Quantiles are nearest-rank over the bucket counts; a bucket's estimate
is its geometric midpoint ``γ^(i+0.5)``, clamped into the exact observed
``[min, max]``.  The documented bound: the estimate's relative error is
at most :attr:`QuantileSketch.quantile_error_bound` =
``sqrt(γ_level) − 1`` (≈ ``relative_accuracy`` until compaction first
fires, doubling-ish per compaction level).
"""

from __future__ import annotations

import math
import sys

from ...errors import ConfigurationError
from .exact import MergeableStat

#: Default relative accuracy of quantile estimates at level 0.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Default live-bucket cap; compaction halves resolution above it.
DEFAULT_MAX_BUCKETS = 2048

#: Magnitudes below this are counted as exact zeros (log would blow up
#: the index range for denormals while adding no quantile information).
DEFAULT_MIN_MAGNITUDE = 1e-12


class QuantileSketch:
    """Mergeable streaming quantiles; state is a pure multiset function."""

    __slots__ = (
        "_gamma0",
        "_log_gamma0",
        "_max_buckets",
        "_min_magnitude",
        "_level",
        "_zero",
        "_pos",
        "_neg",
        "_stat",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        *,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        min_magnitude: float = DEFAULT_MIN_MAGNITUDE,
    ):
        if not (0.0 < relative_accuracy < 1.0):
            raise ConfigurationError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_buckets < 2:
            raise ConfigurationError(
                f"max_buckets must be >= 2, got {max_buckets}"
            )
        if min_magnitude <= 0.0:
            raise ConfigurationError(
                f"min_magnitude must be > 0, got {min_magnitude}"
            )
        # γ₀ chosen so the geometric-midpoint estimate's relative error at
        # level 0 is exactly the requested accuracy: sqrt(γ₀) = 1 + ra.
        self._gamma0 = (1.0 + relative_accuracy) ** 2
        self._log_gamma0 = math.log(self._gamma0)
        self._max_buckets = max_buckets
        self._min_magnitude = min_magnitude
        self._level = 0
        self._zero = 0
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._stat = MergeableStat()

    # -- configuration / introspection ----------------------------------

    @property
    def relative_accuracy(self) -> float:
        """The level-0 relative error bound this sketch was built with."""
        return math.sqrt(self._gamma0) - 1.0

    @property
    def level(self) -> int:
        """Current compaction level (0 until the bucket cap first trips)."""
        return self._level

    @property
    def gamma(self) -> float:
        """Current bucket base: ``γ₀ ** (2 ** level)``."""
        return self._gamma0 ** (2 ** self._level)

    @property
    def quantile_error_bound(self) -> float:
        """Documented relative error bound at the current resolution."""
        return math.sqrt(self.gamma) - 1.0

    @property
    def count(self) -> int:
        return self._stat.count

    @property
    def bucket_count(self) -> int:
        """Live buckets (positive + negative stores; zero is one counter)."""
        return len(self._pos) + len(self._neg)

    @property
    def memory_nbytes(self) -> int:
        """Approximate bytes held by the sketch state.

        Bounded by ``max_buckets`` regardless of sample count — the
        witness the gauge-memory bench records.
        """
        return (
            sys.getsizeof(self._pos)
            + sys.getsizeof(self._neg)
            + sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in self._pos.items())
            + sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in self._neg.items())
            + sys.getsizeof(self._stat._sum._partials)
        )

    @property
    def min(self) -> float:
        if self._stat.count == 0:
            raise ConfigurationError("sketch is empty")
        return self._stat.minimum

    @property
    def max(self) -> float:
        if self._stat.count == 0:
            raise ConfigurationError("sketch is empty")
        return self._stat.maximum

    @property
    def mean(self) -> float:
        """Exact (correctly-rounded, order-invariant) mean of all samples."""
        return self._stat.mean

    @property
    def sum(self) -> float:
        return self._stat.total

    # -- ingestion ------------------------------------------------------

    def _index0(self, magnitude: float) -> int:
        """Level-0 bucket index of a magnitude (> min_magnitude).

        The index is computed *once*, at level 0, and coarser indices are
        derived by arithmetic right-shift — so insertion and coarsening
        can never disagree about where a value lands.
        """
        return math.floor(math.log(magnitude) / self._log_gamma0)

    def add(self, value: float) -> None:
        """Fold one sample in."""
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ConfigurationError(
                f"cannot sketch non-finite value {value!r}"
            )
        self._stat.add(value)
        magnitude = abs(value)
        if magnitude < self._min_magnitude:
            self._zero += 1
            return
        key = self._index0(magnitude) >> self._level
        store = self._pos if value > 0.0 else self._neg
        store[key] = store.get(key, 0) + 1
        if self.bucket_count > self._max_buckets:
            self._compact()

    def _compact(self) -> None:
        """Halve resolution until the live-bucket cap is respected."""
        while self.bucket_count > self._max_buckets:
            self._level += 1
            for name in ("_pos", "_neg"):
                old: dict[int, int] = getattr(self, name)
                new: dict[int, int] = {}
                for key, count in old.items():
                    coarse = key >> 1
                    new[coarse] = new.get(coarse, 0) + count
                setattr(self, name, new)

    # -- merging --------------------------------------------------------

    def _coarsen_to(self, level: int) -> None:
        while self._level < level:
            self._level += 1
            for name in ("_pos", "_neg"):
                old: dict[int, int] = getattr(self, name)
                new: dict[int, int] = {}
                for key, count in old.items():
                    coarse = key >> 1
                    new[coarse] = new.get(coarse, 0) + count
                setattr(self, name, new)

    def merge(self, other: QuantileSketch) -> None:
        """Fold another sketch in (associative, commutative, deterministic)."""
        if (
            self._gamma0 != other._gamma0  # repro-lint: disable=RL005
            or self._max_buckets != other._max_buckets
            or self._min_magnitude != other._min_magnitude  # repro-lint: disable=RL005
        ):
            # Exact config equality is the contract: both sketches were
            # built from the same literals or they do not merge.
            raise ConfigurationError(
                "cannot merge sketches with different configurations"
            )
        common = max(self._level, other._level)
        self._coarsen_to(common)
        self._zero += other._zero
        for name in ("_pos", "_neg"):
            mine: dict[int, int] = getattr(self, name)
            theirs: dict[int, int] = getattr(other, name)
            shift = common - other._level
            for key, count in theirs.items():
                coarse = key >> shift
                mine[coarse] = mine.get(coarse, 0) + count
        self._stat.merge(other._stat)
        if self.bucket_count > self._max_buckets:
            self._compact()

    # -- queries --------------------------------------------------------

    def _bucket_estimate(self, key: int, sign: float) -> float:
        gamma = self.gamma
        estimate = sign * gamma ** key * math.sqrt(gamma)
        # Clamp into the exact observed range so p0/p100 are exact and
        # log-rounding can never push an estimate outside the data.
        return min(max(estimate, self._stat.minimum), self._stat.maximum)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (see the module error bound)."""
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        total = self._stat.count
        if total == 0:
            raise ConfigurationError("sketch is empty")
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        # Value order: most-negative first (descending magnitude index),
        # then zeros, then positives ascending.
        for key in sorted(self._neg, reverse=True):
            cumulative += self._neg[key]
            if cumulative >= rank:
                return self._bucket_estimate(key, -1.0)
        cumulative += self._zero
        if cumulative >= rank:
            return min(max(0.0, self._stat.minimum), self._stat.maximum)
        for key in sorted(self._pos):
            cumulative += self._pos[key]
            if cumulative >= rank:
                return self._bucket_estimate(key, 1.0)
        return self._stat.maximum

    def summary(self) -> dict[str, float]:
        """min/max/mean/p50/p95/p99 in the shape gauges report."""
        return {
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- serialization --------------------------------------------------

    def to_state(self) -> dict:
        """Canonical picklable/JSON-native state (sorted bucket items)."""
        return {
            "gamma0": self._gamma0,
            "max_buckets": self._max_buckets,
            "min_magnitude": self._min_magnitude,
            "level": self._level,
            "zero": self._zero,
            "pos": [[k, v] for k, v in sorted(self._pos.items())],
            "neg": [[k, v] for k, v in sorted(self._neg.items())],
            "stat": self._stat.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> QuantileSketch:
        out = cls.__new__(cls)
        out._gamma0 = float(state["gamma0"])
        out._log_gamma0 = math.log(out._gamma0)
        out._max_buckets = int(state["max_buckets"])
        out._min_magnitude = float(state["min_magnitude"])
        out._level = int(state["level"])
        out._zero = int(state["zero"])
        out._pos = {int(k): int(v) for k, v in state["pos"]}
        out._neg = {int(k): int(v) for k, v in state["neg"]}
        out._stat = MergeableStat.from_state(state["stat"])
        return out
