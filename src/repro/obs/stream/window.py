"""Windowed streaming aggregation keyed on observability ticks.

A :class:`WindowedAggregator` folds ``(tick, value)`` samples into
fixed-width tick windows — window ``k`` covers ticks
``[k*width, (k+1)*width)`` — keeping one exact
:class:`~repro.obs.stream.exact.MergeableStat` per window instead of the
sample series.  Ticks are the simulated sequence numbers the obs runtime
already stamps on every event, so windowing inherits the repo's
determinism contract for free: no host clock is involved anywhere.

Windows merge the same way everything in this package merges: window
indices are exact integers, per-window stats are order-invariant folds,
so partial aggregators from chunked or pooled runs combine into the state
a single aggregator would have reached over the union stream.

Memory is bounded by ``max_windows`` (most-recent windows win).  The
retention rule is itself order-invariant: "keep the ``max_windows``
largest window indices" commutes with merging, because a window index in
the top-N of a union is necessarily in the top-N of whichever side
contains it.
"""

from __future__ import annotations

import math

from ...errors import ConfigurationError
from .exact import MergeableStat


class WindowedAggregator:
    """Per-tick-window min/max/mean/count with an order-invariant merge."""

    __slots__ = ("_width", "_max_windows", "_windows")

    def __init__(self, window_ticks: float, *, max_windows: int = 0):
        if window_ticks <= 0.0:
            raise ConfigurationError(
                f"window width must be > 0 ticks, got {window_ticks}"
            )
        if max_windows < 0:
            raise ConfigurationError(
                f"max_windows must be >= 0 (0 = unbounded), got {max_windows}"
            )
        self._width = float(window_ticks)
        self._max_windows = max_windows
        self._windows: dict[int, MergeableStat] = {}

    @property
    def window_ticks(self) -> float:
        return self._width

    @property
    def window_count(self) -> int:
        return len(self._windows)

    def _evict(self) -> None:
        if self._max_windows and len(self._windows) > self._max_windows:
            for index in sorted(self._windows)[: -self._max_windows]:
                del self._windows[index]

    def add(self, tick: float, value: float) -> None:
        """Fold one sample into its tick window."""
        tick = float(tick)
        if math.isnan(tick) or math.isinf(tick):
            raise ConfigurationError(f"cannot window non-finite tick {tick!r}")
        index = math.floor(tick / self._width)
        stat = self._windows.get(index)
        if stat is None:
            stat = self._windows[index] = MergeableStat()
        stat.add(value)
        self._evict()

    def merge(self, other: WindowedAggregator) -> None:
        """Fold another aggregator in (same width and retention required)."""
        if (
            self._width != other._width  # repro-lint: disable=RL005
            or self._max_windows != other._max_windows
        ):
            # Exact config equality is the contract: both aggregators were
            # built from the same literals or they do not merge.
            raise ConfigurationError(
                "cannot merge windowed aggregators with different configurations"
            )
        for index, stat in other._windows.items():
            mine = self._windows.get(index)
            if mine is None:
                mine = self._windows[index] = MergeableStat()
            mine.merge(stat)
        self._evict()

    def window(self, index: int) -> MergeableStat:
        """The stat for window ``index``; raises if never observed."""
        stat = self._windows.get(index)
        if stat is None:
            raise ConfigurationError(f"no samples in window {index}")
        return stat

    def series(self) -> list[dict[str, float]]:
        """Per-window summaries in tick order (deterministic)."""
        out = []
        for index in sorted(self._windows):
            stat = self._windows[index]
            out.append(
                {
                    "window": float(index),
                    "start_tick": index * self._width,
                    "count": float(stat.count),
                    "min": stat.minimum,
                    "max": stat.maximum,
                    "mean": stat.mean,
                }
            )
        return out

    def to_state(self) -> dict:
        """Canonical JSON-native state (windows sorted by index)."""
        return {
            "window_ticks": self._width,
            "max_windows": self._max_windows,
            "windows": [
                [index, self._windows[index].to_state()]
                for index in sorted(self._windows)
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> WindowedAggregator:
        out = cls(
            float(state["window_ticks"]),
            max_windows=int(state["max_windows"]),
        )
        for index, stat_state in state["windows"]:
            out._windows[int(index)] = MergeableStat.from_state(stat_state)
        return out
