"""Span-tree exports: Chrome-trace and speedscope flame formats.

``repro obs flame <run>`` turns the :class:`~repro.obs.events.SpanEvent`
records of a run's event stream into files the standard flame-graph
viewers open directly:

* **chrome** — Chrome trace-event format (``chrome://tracing``,
  Perfetto): one complete ``"X"`` event per span;
* **speedscope** — https://www.speedscope.app evented profile: balanced
  open/close events reconstructed from the spans' tick intervals and
  depths.

Span timestamps are *observability ticks*, not wall time — the exports
label the unit accordingly and are byte-identical across same-seed runs,
like every other artifact.  When a run was traced in profiling mode the
spans' wall_s values ride along as event args (chrome) for operator
inspection, but never affect the deterministic structure.
"""

from __future__ import annotations

import json

from ...errors import ConfigurationError

#: Export formats understood by :func:`render_flame`.
FLAME_FORMATS = ("chrome", "speedscope")


def spans_from_documents(documents: list[dict]) -> list[dict]:
    """The SpanEvent documents of an event stream, in a canonical order.

    Spans are sorted by (start_tick, depth, seq): parents before their
    children at equal start ticks, emission order as the final tiebreak.
    """
    spans = [d for d in documents if d.get("type") == "SpanEvent"]
    for span in spans:
        for field in ("name", "depth", "start_tick", "end_tick", "seq"):
            if field not in span:
                raise ConfigurationError(
                    f"malformed SpanEvent document: missing {field!r}"
                )
    return sorted(
        spans,
        key=lambda s: (float(s["start_tick"]), int(s["depth"]), int(s["seq"])),
    )


def chrome_trace(documents: list[dict]) -> dict:
    """Chrome trace-event document (complete ``"X"`` events, tick units)."""
    events = []
    for span in spans_from_documents(documents):
        start = float(span["start_tick"])
        duration = float(span["end_tick"]) - start
        args: dict = {"seq": int(span["seq"]), "depth": int(span["depth"])}
        if span.get("attrs"):
            args["attrs"] = str(span["attrs"])
        wall_s = float(span.get("wall_s", -1.0))
        if wall_s >= 0.0:
            args["wall_s"] = wall_s
        events.append(
            {
                "name": str(span["name"]),
                "cat": "span",
                "ph": "X",
                "ts": start,
                "dur": duration,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "obs_ticks", "source": "repro obs flame"},
    }


def speedscope_profile(documents: list[dict], *, name: str = "run") -> dict:
    """Speedscope evented-profile document reconstructed from spans."""
    spans = spans_from_documents(documents)
    frames: list[dict] = []
    frame_index: dict[str, int] = {}
    for span in spans:
        label = str(span["name"])
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
    events: list[dict] = []
    stack: list[dict] = []
    for span in spans:
        start = float(span["start_tick"])
        # Close finished ancestors/siblings before opening this span.
        while stack and float(stack[-1]["end_tick"]) <= start:
            done = stack.pop()
            events.append(
                {
                    "type": "C",
                    "frame": frame_index[str(done["name"])],
                    "at": float(done["end_tick"]),
                }
            )
        if stack and float(span["end_tick"]) > float(stack[-1]["end_tick"]):
            raise ConfigurationError(
                f"span {span['name']!r} overlaps but does not nest within "
                f"{stack[-1]['name']!r} — stream is not a valid span tree"
            )
        events.append({"type": "O", "frame": frame_index[str(span["name"])], "at": start})
        stack.append(span)
    while stack:
        done = stack.pop()
        events.append(
            {
                "type": "C",
                "frame": frame_index[str(done["name"])],
                "at": float(done["end_tick"]),
            }
        )
    if events:
        start_value = min(float(e["at"]) for e in events)
        end_value = max(float(e["at"]) for e in events)
    else:
        start_value = end_value = 0.0
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "none",
                "startValue": start_value,
                "endValue": end_value,
                "events": events,
            }
        ],
        "name": name,
        "exporter": "repro obs flame",
    }


def render_flame(
    documents: list[dict], fmt: str = "chrome", *, name: str = "run"
) -> str:
    """Canonical JSON text of the requested flame export."""
    if fmt == "chrome":
        document = chrome_trace(documents)
    elif fmt == "speedscope":
        document = speedscope_profile(documents, name=name)
    else:
        raise ConfigurationError(
            f"unknown flame format {fmt!r} (choose from {', '.join(FLAME_FORMATS)})"
        )
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
