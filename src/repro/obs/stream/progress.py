"""Live progress/ETA reporting for long fleet runs — operator-facing only.

:class:`ProgressReporter` turns "chips completed out of N" updates into
throttled one-line status messages with a chips/s rate and an ETA.  Wall
time flows exclusively through :mod:`repro.obs.profiling` (the sole RL002
exemption), and the output goes to an injected ``write`` callable (the
CLI passes ``sys.stderr.write``) — never into event streams, manifests,
or any other deterministic artifact.  Disable it (the default when no
``write`` target is given) and zero host-clock reads happen.
"""

from __future__ import annotations

from collections.abc import Callable

from ...errors import ConfigurationError
from ..profiling import wall_clock_s


class ProgressReporter:
    """Throttled operator-facing progress lines with rate + ETA."""

    def __init__(
        self,
        total: int,
        *,
        write: Callable[[str], object] | None = None,
        label: str = "progress",
        unit: str = "items",
        min_interval_s: float = 0.5,
    ):
        if total < 1:
            raise ConfigurationError(f"total must be >= 1, got {total}")
        if min_interval_s < 0.0:
            raise ConfigurationError(
                f"min_interval_s must be >= 0, got {min_interval_s}"
            )
        self._total = total
        self._write = write
        self._label = label
        self._unit = unit
        self._min_interval_s = min_interval_s
        self._done = 0
        # The clock is only read when a write target exists; a disabled
        # reporter performs zero host-clock reads.
        self._start_s = wall_clock_s() if write is not None else 0.0
        self._last_report_s = -1.0

    @property
    def enabled(self) -> bool:
        return self._write is not None

    @property
    def done(self) -> int:
        return self._done

    def _render(self, elapsed_s: float) -> str:
        percent = 100.0 * self._done / self._total
        if elapsed_s > 0.0 and self._done > 0:
            rate = self._done / elapsed_s
            remaining = self._total - self._done
            eta_s = remaining / rate if rate > 0.0 else 0.0
            tail = f" {rate:.0f} {self._unit}/s eta {eta_s:.1f}s"
        else:
            tail = ""
        return (
            f"{self._label}: {self._done}/{self._total} {self._unit} "
            f"({percent:.1f}%){tail}"
        )

    def update(self, completed: int) -> None:
        """Advance by ``completed`` items; may emit a throttled status line."""
        if completed < 0:
            raise ConfigurationError(f"completed must be >= 0, got {completed}")
        self._done = min(self._done + completed, self._total)
        if self._write is None:
            return
        now_s = wall_clock_s()
        finished = self._done >= self._total
        if not finished and (
            self._last_report_s >= 0.0
            and now_s - self._last_report_s < self._min_interval_s
        ):
            return
        self._last_report_s = now_s
        self._write(self._render(now_s - self._start_s) + "\n")

    def finish(self) -> None:
        """Emit a final line for whatever completed (idempotent)."""
        if self._write is None:
            return
        if self._done < self._total:
            # Interrupted run: still report where it stopped.
            self._write(self._render(wall_clock_s() - self._start_s) + "\n")
