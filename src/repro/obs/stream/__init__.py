"""``repro.obs.stream`` — mergeable, bounded-memory streaming telemetry.

The streaming layer lets observability scale to fleet-sized runs without
growing memory with sample count or event count:

* :mod:`~repro.obs.stream.exact` — :class:`ExactSum` /
  :class:`MergeableStat`, the error-free accumulation substrate that
  makes every merge in this package order-invariant;
* :mod:`~repro.obs.stream.sketch` — :class:`QuantileSketch`,
  deterministic compacting streaming quantiles (p50/p95/p99 in bounded
  memory, same inputs ⇒ same sketch bytes);
* :mod:`~repro.obs.stream.histogram` — :class:`MergeableHistogram`,
  exact fixed/exponential-bucket histograms with order-invariant merge;
* :mod:`~repro.obs.stream.window` — :class:`WindowedAggregator`,
  per-tick-window stats keyed on obs ticks;
* :mod:`~repro.obs.stream.rotate` — :class:`RotatingJsonlSink` and the
  segmented-stream readers/compactor;
* :mod:`~repro.obs.stream.progress` — operator-facing progress/ETA
  reporting (wall clock via :mod:`repro.obs.profiling` only);
* :mod:`~repro.obs.stream.flame` — Chrome-trace / speedscope span-tree
  exports behind ``repro obs flame``.

The shared contract (documented in OBSERVABILITY.md "Streaming layer"):
each aggregate's state is a pure function of the observed multiset, so
chunked fleet runs and ``--jobs N`` worker pools fold partial summaries
into byte-identical rollups regardless of chunk size or scheduling.
"""

from .exact import ExactSum, MergeableStat
from .flame import FLAME_FORMATS, chrome_trace, render_flame, speedscope_profile
from .histogram import MergeableHistogram, exponential_bounds
from .progress import ProgressReporter
from .rotate import (
    DEFAULT_EVENTS_PER_SEGMENT,
    RotatingJsonlSink,
    compact_segments,
    is_segment_index,
    load_segment_index,
    read_segmented_documents,
    segment_index_path,
    segmented_events_sha256,
)
from .sketch import QuantileSketch
from .window import WindowedAggregator

__all__ = [
    "DEFAULT_EVENTS_PER_SEGMENT",
    "ExactSum",
    "FLAME_FORMATS",
    "MergeableHistogram",
    "MergeableStat",
    "ProgressReporter",
    "QuantileSketch",
    "RotatingJsonlSink",
    "WindowedAggregator",
    "chrome_trace",
    "compact_segments",
    "exponential_bounds",
    "is_segment_index",
    "load_segment_index",
    "read_segmented_documents",
    "render_flame",
    "segment_index_path",
    "segmented_events_sha256",
    "speedscope_profile",
]
