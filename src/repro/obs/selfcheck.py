"""End-to-end smoke of the observability subsystem (``repro obs selfcheck``).

Runs in a few milliseconds with no simulator involvement: exercises every
instrument type, pushes one event of each type through both sinks,
verifies the JSONL round trip is lossless, and checks that manifest
serialization is deterministic.  Returns its findings as data so the CLI
and the pytest smoke share one implementation (and so this module stays
free of ``print`` per RL007).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..errors import ReproError
from .events import (
    CpmStepEvent,
    DriftAlertEvent,
    GuardbandViolationEvent,
    ObsEvent,
    RollbackEvent,
    SpanEvent,
    event_from_dict,
    event_to_dict,
)
from .manifest import build_manifest, load_manifest, save_manifest
from .runtime import Observability, observed
from .sinks import JsonlFileSink, RingBufferSink, read_jsonl

#: One exemplar per event type (seq placeholders; emission rewrites them).
_EXEMPLARS: tuple[ObsEvent, ...] = (
    CpmStepEvent(
        seq=0, core_label="P0C0", workload="idle", reduction_steps=3,
        safe=True, slack_ps=1.5,
    ),
    GuardbandViolationEvent(
        seq=0, core_label="P0C1", source="dpll", margin_units=1,
        threshold_units=2, frequency_mhz=4700.0,
    ),
    RollbackEvent(
        seq=0, core_label="P0C2", stage="ubench", workload="daxpy",
        from_steps=5, to_steps=4,
    ),
    DriftAlertEvent(
        seq=0, core_label="P0C3", samples=25, mean_residual_mhz=-31.0,
        threshold_mhz=25.0,
    ),
)


def _check_instruments(obs: Observability, failures: list[str]) -> None:
    counter = obs.metrics.counter("selfcheck.count")
    counter.inc(3)
    if counter.value != 3:
        failures.append(f"counter holds {counter.value}, expected 3")
    gauge = obs.metrics.gauge("selfcheck.gauge")
    for sample in (1.0, 2.0, 4.0):
        gauge.set(sample)
    summary = gauge.summary()
    if not (summary["min"] <= summary["p50"] <= summary["p95"] <= summary["max"]):
        failures.append(f"gauge summary is not ordered: {summary}")
    histogram = obs.metrics.histogram("selfcheck.hist", buckets=(1.0, 10.0))
    for sample in (0.5, 5.0, 50.0):
        histogram.observe(sample)
    if histogram.bucket_counts() != (1, 1, 1):
        failures.append(
            f"histogram buckets {histogram.bucket_counts()}, expected (1, 1, 1)"
        )
    if len(obs.metrics.render_table().splitlines()) < 4:
        failures.append("metrics table rendered fewer rows than instruments")


def _check_round_trip(failures: list[str]) -> None:
    for exemplar in _EXEMPLARS:
        rebuilt = event_from_dict(event_to_dict(exemplar))
        if rebuilt != exemplar:
            failures.append(f"{exemplar.event_type} does not round-trip")


def _check_sinks_and_spans(failures: list[str], jsonl_path: Path) -> None:
    ring = RingBufferSink(capacity=16)
    obs = Observability(sink=ring)
    with observed(obs):
        with obs.tracer.span("selfcheck.emit", kinds=len(_EXEMPLARS)):
            for exemplar in _EXEMPLARS:
                obs.emit(exemplar)
    emitted = ring.events()
    if [e.seq for e in emitted] != list(range(len(emitted))):
        failures.append("ring sink sequence numbers are not contiguous")
    spans = ring.events(SpanEvent)
    if len(spans) != 1 or spans[0].end_tick - spans[0].start_tick != len(_EXEMPLARS):
        failures.append("span did not cover the events emitted inside it")

    file_obs = Observability(sink=JsonlFileSink(jsonl_path))
    for exemplar in _EXEMPLARS:
        file_obs.emit(exemplar)
    file_obs.close()
    replayed = list(read_jsonl(jsonl_path))
    expected = [e for e in emitted if not isinstance(e, SpanEvent)]
    if replayed != expected:
        failures.append("JSONL file sink round trip is not lossless")


def _check_manifest(failures: list[str], directory: Path) -> None:
    first = build_manifest("selfcheck", 7, result_metrics={"ok": 1.0})
    second = build_manifest("selfcheck", 7, result_metrics={"ok": 1.0})
    path_a = save_manifest(first, directory / "a.json")
    path_b = save_manifest(second, directory / "b.json")
    if path_a.read_bytes() != path_b.read_bytes():
        failures.append("same-input manifests serialize differently")
    if load_manifest(path_a) != first:
        failures.append("manifest does not round-trip through disk")


def run_selfcheck() -> tuple[bool, str]:
    """Run every check; returns ``(ok, human-readable report)``."""
    failures: list[str] = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
            directory = Path(tmp)
            _check_instruments(Observability(), failures)
            _check_round_trip(failures)
            _check_sinks_and_spans(failures, directory / "events.jsonl")
            _check_manifest(failures, directory)
    except ReproError as exc:
        failures.append(f"unexpected error: {exc}")
    if failures:
        report = "\n".join(
            ["obs selfcheck FAILED:"] + [f"  - {failure}" for failure in failures]
        )
        return False, report
    return True, (
        "obs selfcheck passed: instruments, event round-trip, "
        "ring/JSONL sinks, span ticks, manifest determinism"
    )
