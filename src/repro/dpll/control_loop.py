"""Per-core DPLL adaptive frequency control loop.

The loop's behaviour, per evaluation interval (a handful of cycles):

* reading **below** threshold → *margin violation*: gate the next cycle
  (cheapest correct response) and slew frequency down sharply;
* reading **at** threshold → hold;
* reading **above** threshold → slew frequency up gently toward the excess.

Two asymmetric slew rates matter physically: the loop must *shed* frequency
within nanoseconds to survive a di/dt droop, but may *gain* frequency
lazily.  The loop's total response latency (sensor + decision + slew) is
the quantity the ablation bench A1 sweeps: droops faster than the loop can
answer are exactly what forces conservative CPM settings for noisy
workloads like x264.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.events import GuardbandViolationEvent
from ..obs.runtime import get_obs
from ..units import DVFS_MIN_MHZ, STATIC_MARGIN_MHZ, require_positive


@dataclass(frozen=True)
class LoopConfig:
    """Tunables of one DPLL control loop.

    Parameters
    ----------
    threshold_units:
        Margin (inverter counts) the loop regulates toward.  Readings below
        this are violations.
    up_slew_mhz_per_us:
        Frequency gain rate when margin is abundant.
    down_slew_mhz_per_us:
        Frequency shed rate on a violation (much larger than the up rate).
    evaluation_interval_ns:
        Time between loop decisions; the POWER7+ loop round trip is a few
        cycles, i.e. on the order of a nanosecond.
    f_min_mhz / f_max_mhz:
        Hard clamps of the DPLL output range.
    """

    threshold_units: int = 2
    up_slew_mhz_per_us: float = 50.0
    down_slew_mhz_per_us: float = 2000.0
    evaluation_interval_ns: float = 1.0
    f_min_mhz: float = DVFS_MIN_MHZ
    f_max_mhz: float = 5500.0

    def __post_init__(self) -> None:
        if self.threshold_units < 0:
            raise ConfigurationError("threshold_units must be >= 0")
        require_positive(self.up_slew_mhz_per_us, "up_slew_mhz_per_us")
        require_positive(self.down_slew_mhz_per_us, "down_slew_mhz_per_us")
        require_positive(self.evaluation_interval_ns, "evaluation_interval_ns")
        if not (0.0 < self.f_min_mhz < self.f_max_mhz):
            raise ConfigurationError(
                f"need 0 < f_min < f_max, got [{self.f_min_mhz}, {self.f_max_mhz}]"
            )


@dataclass(frozen=True)
class LoopStepResult:
    """Outcome of one loop evaluation."""

    frequency_mhz: float
    violation: bool
    gated_cycle: bool


class DpllControlLoop:
    """Stateful frequency controller for one core.

    The loop is driven by :meth:`step`, which consumes the current worst
    CPM reading and returns the new frequency plus whether the interval
    suffered a violation / gated cycle.  A frequency cap can be imposed
    externally (DVFS p-state limits from the management layer).
    """

    def __init__(
        self,
        config: LoopConfig | None = None,
        initial_mhz: float = STATIC_MARGIN_MHZ,
        core_label: str = "",
    ):
        self._config = config if config is not None else LoopConfig()
        if not (self._config.f_min_mhz <= initial_mhz <= self._config.f_max_mhz):
            raise ConfigurationError(
                f"initial frequency {initial_mhz} outside loop range"
            )
        self._frequency_mhz = initial_mhz
        self._cap_mhz = self._config.f_max_mhz
        self._violations = 0
        self._gated_cycles = 0
        self._steps = 0
        #: Label stamped on emitted guardband-violation events; empty when
        #: the loop is driven outside any identified core.
        self._core_label = core_label

    @property
    def config(self) -> LoopConfig:
        return self._config

    @property
    def frequency_mhz(self) -> float:
        """Current DPLL output frequency."""
        return self._frequency_mhz

    @property
    def violation_count(self) -> int:
        """Total margin violations seen since construction."""
        return self._violations

    @property
    def gated_cycle_count(self) -> int:
        """Total cycles gated in response to violations."""
        return self._gated_cycles

    @property
    def step_count(self) -> int:
        """Total loop evaluations performed."""
        return self._steps

    def set_cap_mhz(self, cap_mhz: float) -> None:
        """Impose an external frequency ceiling (DVFS throttling)."""
        if cap_mhz <= 0.0:
            raise ConfigurationError(f"cap must be positive, got {cap_mhz}")
        self._cap_mhz = min(cap_mhz, self._config.f_max_mhz)
        self._frequency_mhz = min(self._frequency_mhz, self._cap_mhz)

    def step(self, margin_units: int) -> LoopStepResult:
        """Advance one evaluation interval with the given CPM reading."""
        if margin_units < 0:
            raise ConfigurationError(f"margin reading must be >= 0, got {margin_units}")
        cfg = self._config
        interval_us = cfg.evaluation_interval_ns / 1000.0
        violation = margin_units < cfg.threshold_units
        gated = False
        if violation:
            self._frequency_mhz -= cfg.down_slew_mhz_per_us * interval_us
            gated = True
            self._violations += 1
            self._gated_cycles += 1
        elif margin_units > cfg.threshold_units:
            # Scale the climb by how much excess margin is visible so the
            # loop converges instead of hunting.
            excess = margin_units - cfg.threshold_units
            self._frequency_mhz += cfg.up_slew_mhz_per_us * interval_us * excess
        self._frequency_mhz = max(
            cfg.f_min_mhz, min(self._frequency_mhz, self._cap_mhz)
        )
        self._steps += 1
        if violation:
            obs = get_obs()
            if obs.enabled:
                obs.emit(
                    GuardbandViolationEvent(
                        seq=0,
                        core_label=self._core_label,
                        source="dpll",
                        margin_units=margin_units,
                        threshold_units=cfg.threshold_units,
                        frequency_mhz=self._frequency_mhz,
                    )
                )
                obs.metrics.counter("dpll.violations").inc()
        return LoopStepResult(
            frequency_mhz=self._frequency_mhz, violation=violation, gated_cycle=gated
        )

    def response_latency_ns(self) -> float:
        """Worst-case time to shed 100 MHz after a violation begins.

        A summary figure for the A1 ablation: droops that develop faster
        than this cannot be fully absorbed by the loop and must instead be
        covered by inserted-delay protection.
        """
        cfg = self._config
        shed_time_us = 100.0 / cfg.down_slew_mhz_per_us
        return cfg.evaluation_interval_ns + shed_time_us * 1000.0
