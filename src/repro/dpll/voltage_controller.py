"""Off-chip voltage controller (the overclock-vs-undervolt policy stage).

The POWER7+ off-chip controller reads a 32 ms sliding-window average of the
*slowest* core's frequency and lowers chip-wide V_dd until that average
would fall to the user's frequency target — converting reclaimed margin to
power savings instead of speed.  Because V_dd is shared, the slowest core
of the chip caps the achievable undervolt; that restriction is exactly why
the paper chooses the overclocking policy (each core adapts independently)
and why this library defaults to :attr:`VoltagePolicy.OVERCLOCK`.

The undervolting path is still implemented faithfully: the A4 ablation
bench compares the two policies' frequency and power outcomes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..units import (
    NOMINAL_VDD,
    STATIC_MARGIN_MHZ,
    VOLTAGE_CONTROLLER_WINDOW_MS,
    require_positive,
)


class VoltagePolicy(Enum):
    """What to do with margin the ATM loop reclaims."""

    #: Keep V_dd pinned; every core runs as fast as its loop allows.  The
    #: paper's configuration.
    OVERCLOCK = "overclock"

    #: Shave chip-wide V_dd until the slowest core just meets the target
    #: frequency; margin becomes power savings.
    UNDERVOLT = "undervolt"


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the off-chip controller."""

    window_ms: float = VOLTAGE_CONTROLLER_WINDOW_MS
    sample_period_ms: float = 1.0
    target_mhz: float = STATIC_MARGIN_MHZ
    vdd_step_v: float = 0.005
    vdd_min_v: float = 0.95
    vdd_max_v: float = NOMINAL_VDD

    def __post_init__(self) -> None:
        require_positive(self.window_ms, "window_ms")
        require_positive(self.sample_period_ms, "sample_period_ms")
        require_positive(self.target_mhz, "target_mhz")
        require_positive(self.vdd_step_v, "vdd_step_v")
        if not (0.0 < self.vdd_min_v < self.vdd_max_v):
            raise ConfigurationError("need 0 < vdd_min < vdd_max")


class OffChipVoltageController:
    """Sliding-window V_dd governor for one chip.

    Feed it one sample per millisecond via :meth:`observe`; it returns the
    VRM set-point to apply next.  Under :attr:`VoltagePolicy.OVERCLOCK` the
    set-point never moves.
    """

    def __init__(
        self,
        policy: VoltagePolicy = VoltagePolicy.OVERCLOCK,
        config: ControllerConfig | None = None,
    ):
        self._policy = policy
        self._config = config if config is not None else ControllerConfig()
        window_samples = max(
            1, int(round(self._config.window_ms / self._config.sample_period_ms))
        )
        self._window: deque[float] = deque(maxlen=window_samples)
        self._vdd_setpoint = self._config.vdd_max_v

    @property
    def policy(self) -> VoltagePolicy:
        return self._policy

    @property
    def vdd_setpoint_v(self) -> float:
        """Current VRM output voltage command."""
        return self._vdd_setpoint

    @property
    def window_fill(self) -> int:
        """Number of samples currently in the sliding window."""
        return len(self._window)

    def sliding_average_mhz(self) -> float:
        """Windowed average of the slowest-core frequency samples."""
        if not self._window:
            raise ConfigurationError("no samples observed yet")
        return sum(self._window) / len(self._window)

    def observe(self, slowest_core_mhz: float) -> float:
        """Record one sample and return the updated V_dd set-point.

        The controller only *lowers* voltage while the windowed slowest-core
        average stays above target with a full window, and raises it one
        step as soon as the average dips below target — the conservative
        asymmetry a correctness-critical governor needs.
        """
        if slowest_core_mhz <= 0.0:
            raise ConfigurationError(
                f"frequency sample must be positive, got {slowest_core_mhz}"
            )
        self._window.append(slowest_core_mhz)
        if self._policy is VoltagePolicy.OVERCLOCK:
            return self._vdd_setpoint
        average = self.sliding_average_mhz()
        cfg = self._config
        if average < cfg.target_mhz:
            self._vdd_setpoint = min(
                cfg.vdd_max_v, self._vdd_setpoint + cfg.vdd_step_v
            )
        elif len(self._window) == self._window.maxlen:
            self._vdd_setpoint = max(
                cfg.vdd_min_v, self._vdd_setpoint - cfg.vdd_step_v
            )
        return self._vdd_setpoint
