"""Adaptive frequency control: the DPLL loop and the off-chip Vdd controller.

The per-core digital phase-locked loop (DPLL) compares each cycle's worst
CPM reading against a threshold and slews the core clock — up slowly when
margin is abundant, down quickly (or gating a cycle outright) on a margin
violation (paper Sec. II).  The off-chip voltage controller watches a 32 ms
sliding-window average of the slowest core's frequency and decides how much
chip-wide V_dd can be shaved without missing the user's frequency target;
the paper disables undervolting to convert all reclaimed margin into
frequency, and so does this library's default policy.
"""

from .control_loop import DpllControlLoop, LoopConfig, LoopStepResult
from .voltage_controller import OffChipVoltageController, VoltagePolicy

__all__ = [
    "DpllControlLoop",
    "LoopConfig",
    "LoopStepResult",
    "OffChipVoltageController",
    "VoltagePolicy",
]
