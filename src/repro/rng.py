"""Deterministic random-number streams.

Every stochastic component in the library (process variation draws, di/dt
event arrivals, failure-outcome sampling) pulls randomness from a named
stream derived from a single experiment seed.  Naming the streams makes
results reproducible *and* stable under refactoring: adding a new consumer
does not perturb the draws seen by existing ones, because each stream is
seeded independently from ``(root_seed, name)``.

Usage::

    streams = RngStreams(seed=7)
    process_rng = streams.stream("silicon.process")
    didt_rng = streams.stream("power.didt")
"""

from __future__ import annotations

import zlib

import numpy as np

from .errors import ConfigurationError


def _derive_seed(root_seed: int, name: str) -> int:
    """Mix ``root_seed`` with a stable hash of ``name``.

    ``zlib.crc32`` is used instead of ``hash()`` because the latter is
    salted per-process and would break reproducibility across runs.
    """
    return (root_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (2**32)


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.  Two :class:`RngStreams` built
        with the same seed produce identical streams for identical names.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int) or seed < 0:
            raise ConfigurationError(f"seed must be a non-negative int, got {seed!r}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumers sharing a name also share a draw sequence.
        """
        if not name:
            raise ConfigurationError("stream name must be non-empty")
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(_derive_seed(self._seed, name))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, restarting its sequence.

        Useful in tests that want draw-for-draw reproducibility within a
        single process without constructing a new :class:`RngStreams`.
        """
        self._streams[name] = np.random.default_rng(_derive_seed(self._seed, name))
        return self._streams[name]

    def spawn(self, salt: int) -> "RngStreams":
        """Return an independent factory derived from this one.

        Used when an experiment runs many trials: each trial spawns its own
        factory so trials are independent yet reproducible.
        """
        if salt < 0:
            raise ConfigurationError(f"salt must be non-negative, got {salt}")
        return RngStreams(_derive_seed(self._seed, f"spawn:{salt}"))
