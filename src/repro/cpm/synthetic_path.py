"""The CPM's synthetic timing path.

The synthetic path is a hardware replica of representative pipeline logic —
AND/OR/XOR gates and wire segments — whose propagation delay tracks the
real critical paths' sensitivity to voltage and temperature.  It can only
*mimic* the real paths, though: the residual mismatch between the synthetic
delay and the worst real path activated by a workload is exactly why
aggressive configurations fail (Sec. V-B) and is modeled per-core by
:attr:`repro.silicon.chipspec.CoreSpec.protection_headroom_ps` together
with the stress-requirement curve.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..silicon.paths import PathTimingModel
from ..units import AMBIENT_TEMPERATURE_C, NOMINAL_VDD


class SyntheticPath:
    """Thin behavioural wrapper around a :class:`PathTimingModel`.

    Parameters
    ----------
    timing:
        Delay model of this synthetic path instance.
    position:
        Which functional unit the CPM sits in (e.g. ``"ifu"``); purely
        informational but kept because spatial placement is why POWER7+
        carries five CPMs per core.
    """

    POSITIONS = ("ifu", "isu", "fxu", "fpu", "llc")

    def __init__(self, timing: PathTimingModel, position: str = "ifu"):
        if position not in self.POSITIONS:
            raise ConfigurationError(
                f"position must be one of {self.POSITIONS}, got {position!r}"
            )
        self._timing = timing
        self._position = position

    @property
    def position(self) -> str:
        """Functional-unit placement of this path."""
        return self._position

    @property
    def timing(self) -> PathTimingModel:
        """The underlying delay model."""
        return self._timing

    def delay_ps(
        self,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> float:
        """Propagation delay at the given operating point."""
        return self._timing.delay_ps(vdd, temperature_c)
