"""Critical Path Monitor (CPM) component models.

A CPM measures a core's spare timing margin each cycle with three cascaded
stages (paper Fig. 4a): a programmable **inserted delay**, a **synthetic
path** that mimics real pipeline circuit delay, and an **inverter chain**
that quantizes whatever time remains into an integer count.  The worst
count across a core's CPMs is reported to the DPLL every cycle.

The aggregate behaviour of a core's CPM array is also encoded compactly in
:class:`repro.silicon.chipspec.CoreSpec` for the steady-state solver; the
component classes here agree with that aggregate by construction and exist
for the transient simulator, the factory-calibration procedure, and
component-level tests.
"""

from .inserted_delay import InsertedDelayStage
from .synthetic_path import SyntheticPath
from .inverter_chain import InverterChain
from .monitor import CriticalPathMonitor, CoreCpmArray, build_cpm_array
from .calibration import FactoryCalibration, preset_for_uniform_frequency

__all__ = [
    "InsertedDelayStage",
    "SyntheticPath",
    "InverterChain",
    "CriticalPathMonitor",
    "CoreCpmArray",
    "build_cpm_array",
    "FactoryCalibration",
    "preset_for_uniform_frequency",
]
