"""The CPM's programmable inserted-delay stage.

The inserted delay is the fine-tuning knob of the whole paper: a chain of
inverters whose effective length is selected by a configuration code.  The
factory presets it so the CPM reports *less* margin than physically exists
(extra protection, and performance-equalizing across cores); the paper's
procedure lowers the code to expose that hidden margin.

Manufacturing makes the per-code step widths non-uniform (Sec. IV-C), which
is captured by the ``step_widths_ps`` vector.  Being built from the same
transistors as the rest of the chip, the stage's delay scales with voltage
and temperature exactly like other paths.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..silicon.paths import alpha_power_delay_factor
from ..units import AMBIENT_TEMPERATURE_C, NOMINAL_VDD


class InsertedDelayStage:
    """Programmable delay element with non-uniform step graduation.

    Parameters
    ----------
    step_widths_ps:
        Nominal width of each code step: ``step_widths_ps[i]`` is the delay
        added when the code is raised from ``i`` to ``i + 1``.
    code:
        Initial configuration code (0 … ``len(step_widths_ps)``).
    temp_coefficient_per_c:
        Fractional delay change per °C, matching the synthetic path.
    """

    def __init__(
        self,
        step_widths_ps: tuple[float, ...],
        code: int = 0,
        temp_coefficient_per_c: float = 2.0e-4,
    ):
        if not step_widths_ps:
            raise ConfigurationError("step_widths_ps must not be empty")
        if any(w < 0.0 for w in step_widths_ps):
            raise ConfigurationError("step widths must be >= 0")
        self._step_widths = tuple(float(w) for w in step_widths_ps)
        self._temp_coefficient = temp_coefficient_per_c
        self._code = 0
        self.set_code(code)

    @property
    def code(self) -> int:
        """Current configuration code."""
        return self._code

    @property
    def max_code(self) -> int:
        """Largest valid configuration code."""
        return len(self._step_widths)

    def set_code(self, code: int) -> None:
        """Program the stage to ``code`` inverter-pair steps of delay."""
        if not (0 <= code <= self.max_code):
            raise ConfigurationError(
                f"inserted-delay code must be in [0, {self.max_code}], got {code}"
            )
        self._code = code

    def reduce(self, steps: int) -> None:
        """Lower the code by ``steps`` — the paper's fine-tuning action."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        self.set_code(self._code - steps)

    def nominal_delay_ps(self, code: int | None = None) -> float:
        """Delay at nominal V/T for ``code`` (default: the current code)."""
        effective = self._code if code is None else code
        if not (0 <= effective <= self.max_code):
            raise ConfigurationError(
                f"code must be in [0, {self.max_code}], got {effective}"
            )
        return float(sum(self._step_widths[:effective]))

    def delay_ps(
        self,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> float:
        """Delay at the given operating point for the current code."""
        scale = alpha_power_delay_factor(vdd) * (
            1.0 + self._temp_coefficient * (temperature_c - AMBIENT_TEMPERATURE_C)
        )
        return self.nominal_delay_ps() * scale
