"""The CPM's output inverter chain (margin quantizer).

After the launched edge traverses the inserted delay and the synthetic
path, whatever time remains in the clock cycle lets the edge run down a
chain of inverters; a snapshot of how far it got is the CPM's integer
output.  The chain therefore quantizes the spare margin with a resolution
of one inverter delay and saturates at the chain length.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..silicon.paths import alpha_power_delay_factor
from ..units import AMBIENT_TEMPERATURE_C, NOMINAL_VDD


class InverterChain:
    """Quantizes spare timing margin into an inverter count.

    Parameters
    ----------
    step_ps:
        Nominal delay of one inverter stage, in picoseconds.
    length:
        Number of inverters — the saturation value of the output.
    """

    def __init__(self, step_ps: float = 1.7, length: int = 12):
        if step_ps <= 0.0:
            raise ConfigurationError(f"step_ps must be positive, got {step_ps}")
        if length < 1:
            raise ConfigurationError(f"length must be >= 1, got {length}")
        self._step_ps = step_ps
        self._length = length

    @property
    def step_ps(self) -> float:
        """Nominal per-inverter delay."""
        return self._step_ps

    @property
    def length(self) -> int:
        """Chain length (output saturation value)."""
        return self._length

    def effective_step_ps(
        self,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> float:
        """Per-inverter delay at the given operating point."""
        scale = alpha_power_delay_factor(vdd) * (
            1.0 + 2.0e-4 * (temperature_c - AMBIENT_TEMPERATURE_C)
        )
        return self._step_ps * scale

    def quantize(
        self,
        margin_ps: float,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> int:
        """Return the inverter count for ``margin_ps`` of spare time.

        Negative margin (the edge did not even clear the synthetic path)
        reports zero — the hardware cannot count backwards; the DPLL treats
        a count below its threshold as a violation.
        """
        if margin_ps <= 0.0:
            return 0
        count = int(margin_ps / self.effective_step_ps(vdd, temperature_c))
        return min(count, self._length)
