"""Factory calibration of CPM inserted-delay presets.

Before a processor ships, the vendor programs each CPM's inserted delay so
the default ATM configuration delivers *uniform* core performance
(Sec. III-A): fast corners receive extra delay to fill the empty time after
their circuits finish switching, slow corners receive less.  The wide
preset spread of Fig. 4b is the direct image of process variation.

:func:`preset_for_uniform_frequency` performs the search for one core;
:class:`FactoryCalibration` runs it for a whole chip and reports the preset
vector (the Fig. 4b data for any chip, sampled or testbed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError
from ..silicon.chipspec import ChipSpec, CoreSpec, idle_operating_point
from ..silicon.paths import PathTimingModel
from ..units import AMBIENT_TEMPERATURE_C, NOMINAL_VDD, mhz_to_cycle_ps


def preset_for_uniform_frequency(
    synth_path: PathTimingModel,
    step_widths_ps: tuple[float, ...],
    target_mhz: float,
    slack_ps: float,
    *,
    vdd: float = NOMINAL_VDD,
    temperature_c: float = AMBIENT_TEMPERATURE_C,
) -> int:
    """Return the smallest code at which ATM equilibrium <= ``target_mhz``.

    The ATM equilibrium cycle time at code ``c`` is the occupied CPM time
    plus the threshold slack; the factory wants the *default* equilibrium
    to sit at the uniform target, so it raises the code until the
    equilibrium frequency first drops to (or below) the target.

    Raises :class:`CalibrationError` when even the maximum code leaves the
    core above target (a pathologically fast core for the chosen step
    widths).
    """
    target_cycle = mhz_to_cycle_ps(target_mhz)
    path_delay = synth_path.delay_ps(vdd, temperature_c)
    scale = path_delay / synth_path.base_delay_ps  # operating-point factor
    cumulative = 0.0
    for code, width in enumerate(step_widths_ps, start=1):
        cumulative += width
        equilibrium_cycle = path_delay + (cumulative + slack_ps) * scale
        if equilibrium_cycle >= target_cycle:
            return code
    raise CalibrationError(
        "no inserted-delay code brings the core down to the uniform target; "
        f"max code leaves equilibrium above {target_mhz} MHz"
    )


@dataclass(frozen=True)
class CalibrationReport:
    """Preset codes chosen for one chip, in core order."""

    chip_id: str
    target_mhz: float
    preset_codes: tuple[int, ...]
    core_labels: tuple[str, ...]

    def spread(self) -> tuple[int, int]:
        """(min, max) of the preset codes — Fig. 4b's headline statistic."""
        return min(self.preset_codes), max(self.preset_codes)


class FactoryCalibration:
    """Runs the test-time preset search for every core of a chip.

    ``vdd`` and ``temperature_c`` locate the operating point the uniform
    target refers to; they default to the idle operating point, matching
    where the chip factories anchor their targets.
    """

    def __init__(
        self,
        target_mhz: float,
        *,
        vdd: float | None = None,
        temperature_c: float | None = None,
    ):
        if target_mhz <= 0.0:
            raise CalibrationError(f"target_mhz must be positive, got {target_mhz}")
        idle_vdd, idle_temp = idle_operating_point()
        self._target_mhz = target_mhz
        self._vdd = vdd if vdd is not None else idle_vdd
        self._temperature_c = temperature_c if temperature_c is not None else idle_temp

    def calibrate_core(self, chip: ChipSpec, core: CoreSpec) -> int:
        """Return the preset code the factory would choose for ``core``."""
        return preset_for_uniform_frequency(
            core.synth_path,
            core.step_widths_ps,
            self._target_mhz,
            chip.slack_ps,
            vdd=self._vdd,
            temperature_c=self._temperature_c,
        )

    def calibrate_chip(self, chip: ChipSpec) -> CalibrationReport:
        """Calibrate every core; returns the preset vector."""
        codes = tuple(self.calibrate_core(chip, core) for core in chip.cores)
        return CalibrationReport(
            chip_id=chip.chip_id,
            target_mhz=self._target_mhz,
            preset_codes=codes,
            core_labels=tuple(core.label for core in chip.cores),
        )
