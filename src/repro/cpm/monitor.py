"""Complete Critical Path Monitors and per-core CPM arrays.

A :class:`CriticalPathMonitor` chains the three stages; a
:class:`CoreCpmArray` holds the monitors dispersed across one core's
functional units and reports the worst (smallest) count each cycle — the
value the DPLL consumes.

:func:`build_cpm_array` constructs an array that is consistent with a
core's aggregate :class:`~repro.silicon.chipspec.CoreSpec`: the slowest
monitor's synthetic path equals the core's aggregate path model, so the
component-level and steady-state views agree on the worst margin.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import RngStreams
from ..silicon.chipspec import ChipSpec, CoreSpec
from ..units import AMBIENT_TEMPERATURE_C, NOMINAL_VDD
from .inserted_delay import InsertedDelayStage
from .inverter_chain import InverterChain
from .synthetic_path import SyntheticPath


class CriticalPathMonitor:
    """One CPM: inserted delay → synthetic path → inverter chain."""

    def __init__(
        self,
        inserted_delay: InsertedDelayStage,
        synthetic_path: SyntheticPath,
        inverter_chain: InverterChain,
    ):
        self._inserted = inserted_delay
        self._path = synthetic_path
        self._chain = inverter_chain

    @property
    def inserted_delay(self) -> InsertedDelayStage:
        return self._inserted

    @property
    def synthetic_path(self) -> SyntheticPath:
        return self._path

    @property
    def inverter_chain(self) -> InverterChain:
        return self._chain

    def occupied_ps(
        self,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> float:
        """Time consumed before the edge reaches the inverter chain."""
        return self._inserted.delay_ps(vdd, temperature_c) + self._path.delay_ps(
            vdd, temperature_c
        )

    def measure(
        self,
        cycle_ps: float,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> int:
        """Return this cycle's inverter-count margin reading."""
        if cycle_ps <= 0.0:
            raise ConfigurationError(f"cycle_ps must be positive, got {cycle_ps}")
        margin = cycle_ps - self.occupied_ps(vdd, temperature_c)
        return self._chain.quantize(margin, vdd, temperature_c)


class CoreCpmArray:
    """The CPMs dispersed across one core; reports the worst reading."""

    def __init__(self, core_label: str, monitors: tuple[CriticalPathMonitor, ...]):
        if not monitors:
            raise ConfigurationError("a core needs at least one CPM")
        self._label = core_label
        self._monitors = monitors

    @property
    def label(self) -> str:
        return self._label

    @property
    def monitors(self) -> tuple[CriticalPathMonitor, ...]:
        return self._monitors

    def set_code(self, code: int) -> None:
        """Program every monitor's inserted delay to the same code.

        The paper reduces all CPMs of a core by the same step count to keep
        the search space tractable (Sec. III-A); this mirrors that choice.
        """
        for monitor in self._monitors:
            monitor.inserted_delay.set_code(code)

    def reduce_all(self, steps: int) -> None:
        """Reduce every monitor's code by ``steps``."""
        for monitor in self._monitors:
            monitor.inserted_delay.reduce(steps)

    def worst_reading(
        self,
        cycle_ps: float,
        vdd: float = NOMINAL_VDD,
        temperature_c: float = AMBIENT_TEMPERATURE_C,
    ) -> int:
        """The minimum margin count across the core's monitors."""
        return min(
            monitor.measure(cycle_ps, vdd, temperature_c)
            for monitor in self._monitors
        )


def build_cpm_array(
    chip: ChipSpec,
    core: CoreSpec,
    rng: np.random.Generator | None = None,
    n_monitors: int = 4,
) -> CoreCpmArray:
    """Build a component-level CPM array consistent with ``core``.

    The first monitor is the binding one: its synthetic path is the core's
    aggregate path model.  The remaining monitors mimic faster corners of
    the core (shorter synthetic paths), so the worst-of-array reading
    always comes from the aggregate model — keeping the component view and
    the steady-state solver in exact agreement while still exercising the
    worst-of-N reporting logic.
    """
    if n_monitors < 1:
        raise ConfigurationError(f"n_monitors must be >= 1, got {n_monitors}")
    generator = rng if rng is not None else RngStreams(0).stream("cpm.monitor")
    positions = [p for p in SyntheticPath.POSITIONS if p != "llc"]
    monitors = []
    for index in range(n_monitors):
        if index == 0:
            path_model = core.synth_path
        else:
            # Non-binding monitors sit 1-4% faster than the binding corner.
            margin_factor = float(generator.uniform(0.96, 0.99))
            path_model = core.synth_path.scaled(margin_factor)
        monitors.append(
            CriticalPathMonitor(
                inserted_delay=InsertedDelayStage(
                    core.step_widths_ps, code=core.preset_code
                ),
                synthetic_path=SyntheticPath(
                    path_model, position=positions[index % len(positions)]
                ),
                inverter_chain=InverterChain(step_ps=chip.inverter_step_ps),
            )
        )
    return CoreCpmArray(core.label, tuple(monitors))
