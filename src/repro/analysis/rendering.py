"""Plain-text rendering of experiment tables, bar series, and matrices.

Every experiment module prints the same rows/series its paper counterpart
reports; these helpers keep that output aligned and consistent without any
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import ConfigurationError


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width table with a header rule."""
    if not headers:
        raise ConfigurationError("table needs headers")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a horizontal bar chart scaled to the maximum value."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must have equal length")
    if not values:
        raise ConfigurationError("bar chart needs at least one value")
    peak = max(values)
    if peak <= 0.0:
        raise ConfigurationError("bar chart needs a positive maximum")
    label_width = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[float]],
    *,
    title: str = "",
    fmt: str = "{:.1f}",
) -> str:
    """Render a labeled numeric matrix (the Fig. 10 heatmap, in text)."""
    if len(cells) != len(row_labels):
        raise ConfigurationError("one row of cells per row label required")
    for row in cells:
        if len(row) != len(col_labels):
            raise ConfigurationError("one cell per column label required")
    row_width = max((len(l) for l in row_labels), default=0)
    col_widths = [
        max(len(col_labels[j]), *(len(fmt.format(cells[i][j])) for i in range(len(cells))))
        if cells
        else len(col_labels[j])
        for j in range(len(col_labels))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + "  " + "  ".join(
        col_labels[j].rjust(col_widths[j]) for j in range(len(col_labels))
    )
    lines.append(header)
    for i, label in enumerate(row_labels):
        cells_str = "  ".join(
            fmt.format(cells[i][j]).rjust(col_widths[j]) for j in range(len(col_labels))
        )
        lines.append(f"{label.ljust(row_width)}  {cells_str}")
    return "\n".join(lines)
