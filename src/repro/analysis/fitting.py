"""Least-squares linear fitting with quality diagnostics.

Both of the paper's predictors are straight lines — core frequency versus
chip power (Eq. 1) and application performance versus frequency
(Fig. 12b) — so one well-tested helper serves the whole library.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = slope * x + intercept`` with diagnostics."""

    slope: float
    intercept: float
    r_squared: float
    rmse: float
    n_samples: int

    def predict(self, x: float) -> float:
        """Evaluate the fitted line at ``x``."""
        return self.slope * x + self.intercept

    def invert(self, y: float) -> float:
        """Solve ``y = slope * x + intercept`` for ``x``.

        Raises :class:`CalibrationError` for a (near-)zero slope, where the
        inverse is undefined.
        """
        if abs(self.slope) < 1e-12:
            raise CalibrationError("cannot invert a flat fit")
        return (y - self.intercept) / self.slope


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` on ``x``.

    Requires at least two samples with non-degenerate ``x`` spread.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise CalibrationError(
            f"x and y must have equal length, got {xs.shape} vs {ys.shape}"
        )
    if xs.size < 2:
        raise CalibrationError(f"need at least 2 samples to fit a line, got {xs.size}")
    if float(np.ptp(xs)) == 0.0:
        raise CalibrationError("x values are all identical; fit is degenerate")
    slope, intercept = np.polyfit(xs, ys, 1)
    predictions = slope * xs + intercept
    residuals = ys - predictions
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    rmse = float(np.sqrt(ss_res / xs.size))
    return LinearFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
        rmse=rmse,
        n_samples=int(xs.size),
    )
