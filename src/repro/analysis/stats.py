"""Distribution summaries for repeated characterization trials.

The paper's methodology deliberately repeats every failure experiment to
build a *distribution* of operating limits (Sec. III-B) and reports each
distribution's spread and lower bound.  :class:`DistributionSummary`
captures exactly that view of a sample of integers (limit steps, rollback
steps).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of repeated integer-valued trials."""

    values: tuple[int, ...]
    counts: dict[int, int]

    @property
    def n_trials(self) -> int:
        return len(self.values)

    @property
    def minimum(self) -> int:
        """Lower bound — the paper's definition of a safe *limit*."""
        return min(self.values)

    @property
    def maximum(self) -> int:
        return max(self.values)

    @property
    def spread(self) -> int:
        """Number of distinct outcomes; the paper observes <= 2."""
        return len(self.counts)

    @property
    def mode(self) -> int:
        """Most frequent outcome (ties broken toward the smaller value)."""
        best_count = max(self.counts.values())
        return min(v for v, c in self.counts.items() if c == best_count)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def fraction_of(self, value: int) -> float:
        """Fraction of trials that produced ``value``."""
        return self.counts.get(value, 0) / self.n_trials


def summarize(values: Sequence[int]) -> DistributionSummary:
    """Build a :class:`DistributionSummary` from raw trial outcomes."""
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    ints = tuple(int(v) for v in values)
    return DistributionSummary(values=ints, counts=dict(Counter(ints)))
