"""Fitting, distribution statistics, and ASCII rendering utilities."""

from .fitting import LinearFit, fit_linear
from .stats import DistributionSummary, summarize
from .rendering import ascii_table, ascii_bars, format_matrix

# NOTE: repro.analysis.report is intentionally NOT imported here — it
# depends on repro.experiments, which depends back on the subpackages that
# use these analysis helpers.  Import it explicitly:
# ``from repro.analysis.report import generate_report``.

__all__ = [
    "LinearFit",
    "fit_linear",
    "DistributionSummary",
    "summarize",
    "ascii_table",
    "ascii_bars",
    "format_matrix",
]
