"""Wall-clock benchmark of the experiment suite (``repro bench``).

This is harness self-measurement, not simulation: how long does each
reproduced experiment take, how much does the solve cache help, and how
does the suite compare against a recorded pre-optimization baseline.  All
clock reads go through :mod:`repro.obs.profiling` (the sole RL002
exemption) and the readings land only in the operator-facing
``BENCH_solver.json`` artifact — never in event streams or run manifests.

Timing on shared hosts is noisy, so the harness runs the suite
``repeat`` times and keeps the best (minimum) wall per experiment: the
minimum estimates the compute cost with the least scheduling noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError
from ..experiments import REGISTRY
from ..fastpath.cache import get_solve_cache, reset_solve_cache
from ..obs.profiling import wall_clock_s

#: Schema tag written into the artifact so downstream tooling can evolve.
SCHEMA = "bench_solver/v1"


@dataclass(frozen=True)
class BenchReport:
    """Measured wall-clock profile of one benchmark invocation."""

    seed: int
    jobs: int
    repeat: int
    experiment_wall_s: dict[str, float]
    total_wall_s: float
    cache_hits: int
    cache_misses: int
    baseline_total_s: float | None

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def speedup(self) -> float | None:
        """Suite speedup over the recorded baseline, when one was given."""
        if self.baseline_total_s is None or self.total_wall_s <= 0.0:
            return None
        return self.baseline_total_s / self.total_wall_s

    def to_dict(self) -> dict:
        """JSON document written to ``BENCH_solver.json``."""
        doc: dict = {
            "schema": SCHEMA,
            "seed": self.seed,
            "jobs": self.jobs,
            "repeat": self.repeat,
            "experiments": [
                {"id": experiment_id, "wall_s": round(wall_s, 4)}
                for experiment_id, wall_s in self.experiment_wall_s.items()
            ],
            "total_wall_s": round(self.total_wall_s, 4),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
        }
        if self.baseline_total_s is not None:
            doc["baseline_total_s"] = round(self.baseline_total_s, 4)
            doc["speedup"] = round(self.speedup, 4)
        return doc

    def render(self) -> str:
        """Plain-text summary for the CLI."""
        lines = [
            f"bench: {len(self.experiment_wall_s)} experiment(s), "
            f"seed {self.seed}, jobs {self.jobs}, best of {self.repeat}"
        ]
        for experiment_id, wall_s in self.experiment_wall_s.items():
            lines.append(f"  {experiment_id:<16} {wall_s:7.3f}s")
        lines.append(f"  {'total':<16} {self.total_wall_s:7.3f}s")
        lines.append(
            f"solve cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate)"
        )
        if self.baseline_total_s is not None:
            lines.append(
                f"baseline: {self.baseline_total_s:.2f}s -> "
                f"speedup {self.speedup:.2f}x"
            )
        return "\n".join(lines)


def run_bench(
    experiment_ids: list[str] | None = None,
    *,
    seed: int = 2019,
    jobs: int = 1,
    repeat: int = 1,
    baseline_total_s: float | None = None,
    out_path: str | Path | None = "BENCH_solver.json",
) -> BenchReport:
    """Time the experiment suite and (optionally) write the JSON artifact.

    ``jobs=1`` times each experiment individually from a cold solve cache
    (same per-experiment isolation as the pooled runner).  ``jobs>1``
    times the pooled suite as a whole — per-experiment walls measured
    inside workers are not collected, so the per-experiment map then
    carries one ``__suite__`` entry instead.
    """
    # Local import: analysis must stay importable without dragging the
    # experiment registry's transitive imports in at module load.
    from ..experiments import run_experiment
    from ..experiments.runner import run_many

    ids = list(experiment_ids) if experiment_ids is not None else list(REGISTRY)
    unknown = sorted(set(ids) - set(REGISTRY))
    if unknown:
        raise ConfigurationError(
            f"unknown experiment id(s) {unknown}; known: {', '.join(REGISTRY)}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    walls: dict[str, float] = {}
    cache_hits = 0
    cache_misses = 0
    if jobs == 1:
        for pass_index in range(repeat):
            for experiment_id in ids:
                reset_solve_cache()
                start_s = wall_clock_s()
                run_experiment(experiment_id, seed=seed)
                elapsed_s = wall_clock_s() - start_s
                previous = walls.get(experiment_id)
                if previous is None or elapsed_s < previous:
                    walls[experiment_id] = elapsed_s
                if pass_index == 0:
                    cache = get_solve_cache()
                    cache_hits += cache.hits
                    cache_misses += cache.misses
        total_wall_s = sum(walls.values())
    else:
        total_wall_s = float("inf")
        for _ in range(repeat):
            start_s = wall_clock_s()
            run_many(ids, seed=seed, jobs=jobs)
            total_wall_s = min(total_wall_s, wall_clock_s() - start_s)
        walls["__suite__"] = total_wall_s

    report = BenchReport(
        seed=seed,
        jobs=jobs,
        repeat=repeat,
        experiment_wall_s=walls,
        total_wall_s=total_wall_s,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        baseline_total_s=baseline_total_s,
    )
    if out_path is not None:
        path = Path(out_path)
        path.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
    return report


__all__ = ["BenchReport", "run_bench", "SCHEMA"]
