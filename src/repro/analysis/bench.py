"""Wall-clock benchmark of the experiment suite (``repro bench``).

This is harness self-measurement, not simulation: how long does each
reproduced experiment take, how much does the solve cache help, and how
does the suite compare against a recorded pre-optimization baseline.  All
clock reads go through :mod:`repro.obs.profiling` (the sole RL002
exemption) and the readings land only in the operator-facing
``BENCH_solver.json`` artifact — never in event streams or run manifests.

Timing on shared hosts is noisy, so the harness runs the suite
``repeat`` times and keeps the best (minimum) wall per experiment: the
minimum estimates the compute cost with the least scheduling noise.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError, SimulationError
from ..experiments import REGISTRY
from ..fastpath.cache import get_solve_cache, reset_solve_cache
from ..obs.profiling import wall_clock_s

#: Schema tag written into the artifact so downstream tooling can evolve.
#: v2 adds the persistent-store cold/warm entry (``store``), v3 the
#: alerting-tax entry (``obs_export``), alongside the v1 fields; older
#: artifacts still load in :func:`compare_to_baseline`.
SCHEMA = "bench_solver/v3"

#: Absolute wall-clock slack for the regression gate: totals below this
#: delta are scheduling noise on shared CI hosts, never a regression.
#: ``repro bench --compare`` overrides it with ``--noise-floor-ms``.
MIN_REGRESSION_S = 0.05

#: Minimum warm-over-cold speedup the persistent solve store must keep
#: delivering for ``--compare`` to pass when the fresh run benched it.
STORE_SPEEDUP_FLOOR = 3.0

#: Maximum wall-clock ratio the tsdb-capture + alert-evaluation path may
#: reach over a plain fleet characterization for ``--compare`` to pass
#: when the fresh run benched it (1.05 = at most 5% alerting tax).
ALERTS_OVERHEAD_CEILING = 1.05


def exceeds_ratio_gate(
    fresh: float,
    base: float,
    *,
    threshold: float,
    min_delta: float = MIN_REGRESSION_S,
) -> bool:
    """Shared regression predicate: ratio threshold plus a noise floor.

    True when ``fresh / base > threshold`` *and* the absolute increase
    exceeds ``min_delta`` — the same two-condition gate ``--compare`` uses
    for wall-clock totals, reused by ``repro obs history`` for metric
    series (with a caller-chosen floor).
    """
    if threshold <= 0.0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    if base > 0.0:
        ratio = fresh / base
    else:
        ratio = float("inf") if fresh > 0.0 else 0.0
    return ratio > threshold and (fresh - base) > min_delta


@dataclass(frozen=True)
class FleetBench:
    """Population-vs-loop solve timing over a sampled fleet.

    Both strategies converge the identical (chip, assignment rows) work
    list from a cold solve cache; results are checked equal before the
    numbers are reported, so the speedup can never come from divergence.
    """

    n_chips: int
    rows_per_chip: int
    chip_loop_wall_s: float
    population_wall_s: float

    @property
    def speedup(self) -> float:
        """Chip-at-a-time wall over fleet-batched wall."""
        if self.population_wall_s <= 0.0:
            return float("inf")
        return self.chip_loop_wall_s / self.population_wall_s

    def to_dict(self) -> dict:
        return {
            "n_chips": self.n_chips,
            "rows_per_chip": self.rows_per_chip,
            "chip_loop_wall_s": round(self.chip_loop_wall_s, 4),
            "population_wall_s": round(self.population_wall_s, 4),
            "speedup": round(self.speedup, 4),
        }


def run_fleet_bench(
    n_chips: int = 500,
    *,
    seed: int = 2019,
    rows_per_chip: int = 4,
    repeat: int = 1,
) -> FleetBench:
    """Time fleet solving: chip-at-a-time ``solve_many`` loop vs
    :func:`~repro.fastpath.population.solve_population`.

    Samples ``n_chips`` chips, builds each a reduction ladder of
    ``rows_per_chip`` assignment rows, compiles the chip tables outside
    the timed region (both strategies need them), then times each
    strategy from a cold cache, best of ``repeat``.  Raises
    :class:`SimulationError` if the two strategies disagree on any
    per-chip state.
    """
    from ..atm.chip_sim import ChipSim
    from ..fastpath.population import solve_population
    from ..silicon.chipspec import sample_chip

    if n_chips < 1:
        raise ConfigurationError(f"fleet chips must be >= 1, got {n_chips}")
    if rows_per_chip < 1:
        raise ConfigurationError(
            f"rows_per_chip must be >= 1, got {rows_per_chip}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")

    sims = []
    rows_per = []
    for index in range(n_chips):
        chip = sample_chip(seed + index, chip_id=f"F{index}")
        sim = ChipSim(chip)
        sim.compiled  # noqa: B018 — build the tables outside the timed region
        max_step = int(min(core.preset_code for core in chip.cores))
        rows_per.append(
            [
                sim.uniform_assignments(reduction_steps=min(step, max_step))
                for step in range(rows_per_chip)
            ]
        )
        sims.append(sim)

    loop_wall_s = float("inf")
    population_wall_s = float("inf")
    loop_states: list = []
    population_states: list = []
    for _ in range(repeat):
        reset_solve_cache()
        start_s = wall_clock_s()
        loop_states = [
            sim.solve_many(rows) for sim, rows in zip(sims, rows_per)
        ]
        loop_wall_s = min(loop_wall_s, wall_clock_s() - start_s)

        reset_solve_cache()
        start_s = wall_clock_s()
        population_states = solve_population(sims, rows_per)
        population_wall_s = min(population_wall_s, wall_clock_s() - start_s)
    reset_solve_cache()

    for loop_chip, population_chip in zip(loop_states, population_states):
        for one, two in zip(loop_chip, population_chip):
            if one.freqs_mhz != two.freqs_mhz:  # repro-lint: disable=RL005
                # Bitwise contract check — any mismatch at all is a bug.
                raise SimulationError(
                    "population solve deviates from the chip-at-a-time loop"
                )
    return FleetBench(
        n_chips=n_chips,
        rows_per_chip=rows_per_chip,
        chip_loop_wall_s=loop_wall_s,
        population_wall_s=population_wall_s,
    )


@dataclass(frozen=True)
class ObsOverheadBench:
    """Instrumentation tax: fleet characterization observed vs dark.

    Both runs converge the identical chip set from a cold solve cache; the
    observed run uses the metrics-only streaming-telemetry mode (NullSink
    + streaming gauges) — the always-on configuration fleet-scale runs
    pay for — so the delta is the metric-fold tax, not event serialization
    or disk I/O.
    """

    n_chips: int
    disabled_wall_s: float
    enabled_wall_s: float
    probes: int

    @property
    def overhead_ratio(self) -> float:
        """Fractional slowdown of the observed run (0.0 = free)."""
        if self.disabled_wall_s <= 0.0:
            return 0.0
        return max(0.0, self.enabled_wall_s / self.disabled_wall_s - 1.0)

    def to_dict(self) -> dict:
        return {
            "n_chips": self.n_chips,
            "disabled_wall_s": round(self.disabled_wall_s, 4),
            "enabled_wall_s": round(self.enabled_wall_s, 4),
            "probes": self.probes,
            "overhead_ratio": round(self.overhead_ratio, 4),
        }


def run_obs_overhead_bench(
    n_chips: int = 32,
    *,
    seed: int = 2019,
    repeat: int = 1,
) -> ObsOverheadBench:
    """Time :func:`~repro.core.fleet.characterize_fleet` dark vs observed.

    Best-of-``repeat`` walls on each side, cold solve cache per pass.  The
    observed side uses a :class:`~repro.obs.sinks.NullSink` (events are
    suppressed at the construction site; instruments still fold) with a
    streaming-gauge registry, so the measured overhead is the
    instrumentation tax the ``--metrics-mode streaming`` fleet path pays
    — the number the tools/check.sh obs-overhead gate holds below its
    threshold.
    """
    from ..core.fleet import characterize_fleet
    from ..obs.metrics import MetricsRegistry
    from ..obs.runtime import Observability, observed
    from ..obs.sinks import NullSink

    if n_chips < 1:
        raise ConfigurationError(f"obs bench chips must be >= 1, got {n_chips}")
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")

    disabled_wall_s = float("inf")
    enabled_wall_s = float("inf")
    probes = 0
    for _ in range(repeat):
        reset_solve_cache()
        start_s = wall_clock_s()
        dark = characterize_fleet(n_chips, seed=seed)
        disabled_wall_s = min(disabled_wall_s, wall_clock_s() - start_s)

        reset_solve_cache()
        obs = Observability(
            NullSink(), metrics=MetricsRegistry(gauge_mode="streaming")
        )
        start_s = wall_clock_s()
        with observed(obs):
            lit = characterize_fleet(n_chips, seed=seed)
        enabled_wall_s = min(enabled_wall_s, wall_clock_s() - start_s)
        probes = lit.probe_runs
        if lit.to_dict() != dark.to_dict():
            raise SimulationError(
                "observed fleet characterization deviates from the dark run"
            )
    reset_solve_cache()
    return ObsOverheadBench(
        n_chips=n_chips,
        disabled_wall_s=disabled_wall_s,
        enabled_wall_s=enabled_wall_s,
        probes=probes,
    )


@dataclass(frozen=True)
class GaugeMemoryBench:
    """Exact-vs-streaming gauge memory at fleet-scale sample counts.

    Feeds the identical sample series into an exact (trace-backed) gauge
    and a streaming (sketch-backed) one, then reports the resident bytes
    of each and the worst observed quantile error against the documented
    sketch bound.
    """

    samples: int
    exact_nbytes: int
    streaming_nbytes: int
    max_quantile_error: float
    error_bound: float

    @property
    def compression(self) -> float:
        """Exact bytes over streaming bytes (higher = better)."""
        if self.streaming_nbytes <= 0:
            return float("inf")
        return self.exact_nbytes / self.streaming_nbytes

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "exact_nbytes": self.exact_nbytes,
            "streaming_nbytes": self.streaming_nbytes,
            "compression": round(self.compression, 2),
            "max_quantile_error": round(self.max_quantile_error, 6),
            "error_bound": round(self.error_bound, 6),
        }


def run_gauge_memory_bench(
    samples: int = 100_000,
    *,
    seed: int = 2019,
) -> GaugeMemoryBench:
    """Measure streaming-gauge memory against the exact recorder.

    Draws ``samples`` lognormal values from a named
    :class:`~repro.rng.RngStreams` stream (RL001), sets them on one exact
    and one streaming gauge, and compares p50/p95/p99: the streaming
    estimates must land within the sketch's documented relative error
    bound of the exact values, at a small fixed memory footprint.
    """
    from ..obs.metrics import Gauge
    from ..rng import RngStreams

    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")

    stream = RngStreams(seed).stream("bench.gauge_memory")
    values = stream.lognormal(mean=0.0, sigma=1.0, size=samples)

    exact = Gauge("bench.exact", mode="exact")
    streaming = Gauge("bench.streaming", mode="streaming")
    for tick, value in enumerate(values):
        exact.set(float(value), tick=float(tick))
        streaming.set(float(value), tick=float(tick))

    bound = streaming.sketch.quantile_error_bound
    ordered = sorted(float(value) for value in values)
    worst = 0.0
    for q in (0.50, 0.95, 0.99):
        # Nearest-rank truth — the rank semantics the sketch's relative
        # error bound is stated against.
        rank = max(1, math.ceil(q * samples))
        truth = ordered[rank - 1]
        estimate = streaming.sketch.quantile(q)
        if truth > 0.0:
            worst = max(worst, abs(estimate - truth) / truth)
    if worst > bound:
        raise SimulationError(
            f"streaming gauge quantile error {worst:.6f} exceeds the "
            f"documented bound {bound:.6f}"
        )
    return GaugeMemoryBench(
        samples=samples,
        exact_nbytes=exact.memory_nbytes,
        streaming_nbytes=streaming.memory_nbytes,
        max_quantile_error=worst,
        error_bound=bound,
    )


@dataclass(frozen=True)
class StoreBench:
    """Persistent solve-store payoff: cold vs warm fleet characterization.

    The cold pass populates a fresh store (characterize + compile + solve,
    plus record writes); the warm pass re-runs the identical fleet against
    that store and must serve every characterization, compiled table, and
    converged state from disk.  Reports are checked byte-equal before the
    numbers are reported, so the speedup can never come from divergence.
    """

    n_chips: int
    trials: int
    cold_wall_s: float
    warm_wall_s: float
    warm_hits: int
    warm_misses: int
    store_entries: int
    store_bytes: int

    @property
    def speedup(self) -> float:
        """Cold wall over warm wall (the warm-run payoff)."""
        if self.warm_wall_s <= 0.0:
            return float("inf")
        return self.cold_wall_s / self.warm_wall_s

    def to_dict(self) -> dict:
        return {
            "n_chips": self.n_chips,
            "trials": self.trials,
            "cold_wall_s": round(self.cold_wall_s, 4),
            "warm_wall_s": round(self.warm_wall_s, 4),
            "speedup": round(self.speedup, 4),
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "store_entries": self.store_entries,
            "store_bytes": self.store_bytes,
        }


def run_store_bench(
    n_chips: int = 256,
    *,
    seed: int = 2019,
    trials: int = 4,
    repeat: int = 1,
) -> StoreBench:
    """Time :func:`~repro.core.fleet.characterize_fleet` cold vs warm.

    Each cold pass runs into a *fresh* temporary store (so it always pays
    characterization, compilation, solving, and record writes); warm
    passes re-run against the first cold pass's populated store.  Best
    wall on each side over ``repeat`` passes.  Raises
    :class:`SimulationError` if any pass's report deviates from the cold
    reference — the store must never change result bytes.
    """
    import tempfile
    from pathlib import Path as _Path

    from ..core.fleet import characterize_fleet
    from ..fastpath.store import configure_store, reset_store

    if n_chips < 1:
        raise ConfigurationError(f"store bench chips must be >= 1, got {n_chips}")
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")

    cold_wall_s = float("inf")
    warm_wall_s = float("inf")
    warm_hits = 0
    warm_misses = 0
    store_entries = 0
    store_bytes = 0
    reference: dict | None = None
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        try:
            for pass_index in range(repeat):
                root = _Path(tmp) / f"cold{pass_index}"
                configure_store(root)
                reset_solve_cache()
                start_s = wall_clock_s()
                cold = characterize_fleet(n_chips, seed=seed, trials=trials)
                cold_wall_s = min(cold_wall_s, wall_clock_s() - start_s)
                if reference is None:
                    reference = cold.to_dict()
                elif cold.to_dict() != reference:
                    raise SimulationError(
                        "cold store pass deviates from the reference run"
                    )

            # Warm passes replay the *first* cold pass's store.
            warm_store = configure_store(_Path(tmp) / "cold0")
            for _ in range(repeat):
                reset_solve_cache()
                before = warm_store.stats()
                start_s = wall_clock_s()
                warm = characterize_fleet(n_chips, seed=seed, trials=trials)
                warm_wall_s = min(warm_wall_s, wall_clock_s() - start_s)
                after = warm_store.stats()
                warm_hits = after["hits"] - before["hits"]
                warm_misses = after["misses"] - before["misses"]
                if warm.to_dict() != reference:
                    raise SimulationError(
                        "warm store run deviates from the cold run"
                    )
            store_entries = len(warm_store)
            store_bytes = (
                warm_store.dat_path.stat().st_size
                if warm_store.dat_path.exists()
                else 0
            )
        finally:
            reset_store()
            reset_solve_cache()
    return StoreBench(
        n_chips=n_chips,
        trials=trials,
        cold_wall_s=cold_wall_s,
        warm_wall_s=warm_wall_s,
        warm_hits=warm_hits,
        warm_misses=warm_misses,
        store_entries=store_entries,
        store_bytes=store_bytes,
    )


@dataclass(frozen=True)
class ObsExportBench:
    """Alerting tax: fleet characterization plain vs tsdb-captured.

    The alerting pass runs the identical fleet while recording per-chip
    series into a :class:`~repro.obs.tsdb.Tsdb` and then evaluates the
    default alert-rule pack over the captured windows — the always-on
    cost of the alerting layer.  The OpenMetrics render is timed
    separately (it is a read-side export, not part of the capture tax).
    Reports are checked equal before the numbers are reported, so the
    overhead can never hide divergence.
    """

    n_chips: int
    plain_wall_s: float
    alerting_wall_s: float
    export_wall_s: float
    series: int
    samples: int
    alerts_fired: int

    @property
    def overhead_ratio(self) -> float:
        """Fractional slowdown of the alerting run (0.0 = free)."""
        if self.plain_wall_s <= 0.0:
            return 0.0
        return max(0.0, self.alerting_wall_s / self.plain_wall_s - 1.0)

    def to_dict(self) -> dict:
        return {
            "n_chips": self.n_chips,
            "plain_wall_s": round(self.plain_wall_s, 4),
            "alerting_wall_s": round(self.alerting_wall_s, 4),
            "export_wall_s": round(self.export_wall_s, 4),
            "series": self.series,
            "samples": self.samples,
            "alerts_fired": self.alerts_fired,
            "overhead_ratio": round(self.overhead_ratio, 4),
        }


def run_obs_export_bench(
    n_chips: int = 128,
    *,
    seed: int = 2019,
    repeat: int = 1,
) -> ObsExportBench:
    """Time fleet characterization plain vs tsdb-captured-and-alerted.

    Best-of-``repeat`` walls on each side, cold solve cache per pass.
    The alerting side threads a fresh :class:`~repro.obs.tsdb.Tsdb`
    through :func:`~repro.core.fleet.characterize_fleet` and evaluates
    :func:`~repro.obs.alerts.default_rule_pack` over the captured
    windows; the tools/check.sh alerting gate holds the measured
    overhead below :data:`ALERTS_OVERHEAD_CEILING`.  The OpenMetrics
    page render is timed on its own so export cost is visible without
    polluting the capture tax.  Raises :class:`SimulationError` if the
    alerting run's report deviates from the plain run's.
    """
    from ..core.fleet import characterize_fleet
    from ..obs.alerts import default_rule_pack, evaluate_rules
    from ..obs.tsdb import Tsdb, render_openmetrics

    if n_chips < 1:
        raise ConfigurationError(
            f"export bench chips must be >= 1, got {n_chips}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")

    rules = default_rule_pack()
    plain_wall_s = float("inf")
    alerting_wall_s = float("inf")
    export_wall_s = float("inf")
    series = 0
    samples = 0
    alerts_fired = 0
    for _ in range(repeat):
        reset_solve_cache()
        start_s = wall_clock_s()
        plain = characterize_fleet(n_chips, seed=seed)
        plain_wall_s = min(plain_wall_s, wall_clock_s() - start_s)

        reset_solve_cache()
        tsdb = Tsdb("bench_fleet", seed)
        start_s = wall_clock_s()
        alerted = characterize_fleet(n_chips, seed=seed, tsdb=tsdb)
        outcome = evaluate_rules(tsdb, rules)
        alerting_wall_s = min(alerting_wall_s, wall_clock_s() - start_s)

        start_s = wall_clock_s()
        render_openmetrics(tsdb=tsdb)
        export_wall_s = min(export_wall_s, wall_clock_s() - start_s)

        series = len(tsdb)
        samples = sum(
            tsdb.series(metric).sample_count for metric in tsdb.metrics()
        )
        alerts_fired = len(outcome.alerts)
        if alerted.to_dict() != plain.to_dict():
            raise SimulationError(
                "tsdb-captured fleet characterization deviates from the "
                "plain run"
            )
    reset_solve_cache()
    return ObsExportBench(
        n_chips=n_chips,
        plain_wall_s=plain_wall_s,
        alerting_wall_s=alerting_wall_s,
        export_wall_s=export_wall_s,
        series=series,
        samples=samples,
        alerts_fired=alerts_fired,
    )


@dataclass(frozen=True)
class BenchReport:
    """Measured wall-clock profile of one benchmark invocation."""

    seed: int
    jobs: int
    repeat: int
    experiment_wall_s: dict[str, float]
    total_wall_s: float
    cache_hits: int
    cache_misses: int
    baseline_total_s: float | None
    fleet: FleetBench | None = None
    obs_overhead: ObsOverheadBench | None = None
    gauge_memory: GaugeMemoryBench | None = None
    store: StoreBench | None = None
    obs_export: ObsExportBench | None = None

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def speedup(self) -> float | None:
        """Suite speedup over the recorded baseline, when one was given."""
        if self.baseline_total_s is None or self.total_wall_s <= 0.0:
            return None
        return self.baseline_total_s / self.total_wall_s

    def to_dict(self) -> dict:
        """JSON document written to ``BENCH_solver.json``."""
        doc: dict = {
            "schema": SCHEMA,
            "seed": self.seed,
            "jobs": self.jobs,
            "repeat": self.repeat,
            "experiments": [
                {"id": experiment_id, "wall_s": round(wall_s, 4)}
                for experiment_id, wall_s in self.experiment_wall_s.items()
            ],
            "total_wall_s": round(self.total_wall_s, 4),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
        }
        if self.baseline_total_s is not None:
            doc["baseline_total_s"] = round(self.baseline_total_s, 4)
            doc["speedup"] = round(self.speedup, 4)
        if self.fleet is not None:
            doc["fleet"] = self.fleet.to_dict()
        if self.obs_overhead is not None:
            doc["obs_overhead"] = self.obs_overhead.to_dict()
        if self.gauge_memory is not None:
            doc["gauge_memory"] = self.gauge_memory.to_dict()
        if self.store is not None:
            doc["store"] = self.store.to_dict()
        if self.obs_export is not None:
            doc["obs_export"] = self.obs_export.to_dict()
        return doc

    def render(self) -> str:
        """Plain-text summary for the CLI."""
        lines = [
            f"bench: {len(self.experiment_wall_s)} experiment(s), "
            f"seed {self.seed}, jobs {self.jobs}, best of {self.repeat}"
        ]
        for experiment_id, wall_s in self.experiment_wall_s.items():
            lines.append(f"  {experiment_id:<16} {wall_s:7.3f}s")
        lines.append(f"  {'total':<16} {self.total_wall_s:7.3f}s")
        lines.append(
            f"solve cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate)"
        )
        if self.baseline_total_s is not None:
            lines.append(
                f"baseline: {self.baseline_total_s:.2f}s -> "
                f"speedup {self.speedup:.2f}x"
            )
        if self.fleet is not None:
            lines.append(
                f"fleet ({self.fleet.n_chips} chips x "
                f"{self.fleet.rows_per_chip} rows): "
                f"chip loop {self.fleet.chip_loop_wall_s:.3f}s / "
                f"population {self.fleet.population_wall_s:.3f}s -> "
                f"speedup {self.fleet.speedup:.2f}x"
            )
        if self.obs_overhead is not None:
            oh = self.obs_overhead
            lines.append(
                f"obs overhead ({oh.n_chips} chips, {oh.probes} probes): "
                f"dark {oh.disabled_wall_s:.3f}s / observed "
                f"{oh.enabled_wall_s:.3f}s -> "
                f"+{100.0 * oh.overhead_ratio:.1f}%"
            )
        if self.gauge_memory is not None:
            gm = self.gauge_memory
            lines.append(
                f"gauge memory ({gm.samples} samples): exact "
                f"{gm.exact_nbytes} B / streaming {gm.streaming_nbytes} B "
                f"({gm.compression:.0f}x smaller), worst quantile error "
                f"{100.0 * gm.max_quantile_error:.2f}% "
                f"(bound {100.0 * gm.error_bound:.2f}%)"
            )
        if self.store is not None:
            st = self.store
            lines.append(
                f"solve store ({st.n_chips} chips, trials {st.trials}): "
                f"cold {st.cold_wall_s:.3f}s / warm {st.warm_wall_s:.3f}s -> "
                f"speedup {st.speedup:.2f}x "
                f"({st.warm_hits} hits / {st.warm_misses} misses warm, "
                f"{st.store_entries} records, {st.store_bytes} B)"
            )
        if self.obs_export is not None:
            ox = self.obs_export
            lines.append(
                f"alerting ({ox.n_chips} chips, {ox.series} series / "
                f"{ox.samples} samples): plain {ox.plain_wall_s:.3f}s / "
                f"alerted {ox.alerting_wall_s:.3f}s -> "
                f"+{100.0 * ox.overhead_ratio:.1f}%, export "
                f"{ox.export_wall_s:.3f}s, {ox.alerts_fired} firing(s)"
            )
        return "\n".join(lines)


def run_bench(
    experiment_ids: list[str] | None = None,
    *,
    seed: int = 2019,
    jobs: int = 1,
    repeat: int = 1,
    baseline_total_s: float | None = None,
    out_path: str | Path | None = "BENCH_solver.json",
    fleet_chips: int = 0,
    obs_chips: int = 0,
    gauge_samples: int = 0,
    store_chips: int = 0,
    export_chips: int = 0,
) -> BenchReport:
    """Time the experiment suite and (optionally) write the JSON artifact.

    ``jobs=1`` times each experiment individually from a cold solve cache
    (same per-experiment isolation as the pooled runner).  ``jobs>1``
    times the pooled suite as a whole — per-experiment walls measured
    inside workers are not collected, so the per-experiment map then
    carries one ``__suite__`` entry instead.  ``fleet_chips > 0`` appends
    a :class:`FleetBench` entry timing population-vs-loop solving over
    that many sampled chips.  ``obs_chips > 0`` appends an
    :class:`ObsOverheadBench` entry (the tools/check.sh obs-overhead gate
    reads it), and ``gauge_samples > 0`` a :class:`GaugeMemoryBench`
    entry witnessing the streaming gauge's bounded memory.
    ``store_chips > 0`` appends a :class:`StoreBench` entry timing fleet
    characterization cold vs warm against a temporary persistent store
    (the tools/check.sh store gate holds its speedup above the floor).
    ``export_chips > 0`` appends an :class:`ObsExportBench` entry timing
    the tsdb-capture + alert-evaluation tax and the OpenMetrics export
    (the tools/check.sh alerting gate holds the tax below
    :data:`ALERTS_OVERHEAD_CEILING`).
    """
    # Local import: analysis must stay importable without dragging the
    # experiment registry's transitive imports in at module load.
    from ..experiments import run_experiment
    from ..experiments.runner import run_many

    ids = list(experiment_ids) if experiment_ids is not None else list(REGISTRY)
    unknown = sorted(set(ids) - set(REGISTRY))
    if unknown:
        raise ConfigurationError(
            f"unknown experiment id(s) {unknown}; known: {', '.join(REGISTRY)}"
        )
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    walls: dict[str, float] = {}
    cache_hits = 0
    cache_misses = 0
    if jobs == 1:
        for pass_index in range(repeat):
            for experiment_id in ids:
                reset_solve_cache()
                start_s = wall_clock_s()
                run_experiment(experiment_id, seed=seed)
                elapsed_s = wall_clock_s() - start_s
                previous = walls.get(experiment_id)
                if previous is None or elapsed_s < previous:
                    walls[experiment_id] = elapsed_s
                if pass_index == 0:
                    cache = get_solve_cache()
                    cache_hits += cache.hits
                    cache_misses += cache.misses
        total_wall_s = sum(walls.values())
    else:
        total_wall_s = float("inf")
        for _ in range(repeat):
            start_s = wall_clock_s()
            run_many(ids, seed=seed, jobs=jobs)
            total_wall_s = min(total_wall_s, wall_clock_s() - start_s)
        walls["__suite__"] = total_wall_s

    fleet = (
        run_fleet_bench(fleet_chips, seed=seed, repeat=repeat)
        if fleet_chips > 0
        else None
    )
    obs_overhead = (
        run_obs_overhead_bench(obs_chips, seed=seed, repeat=repeat)
        if obs_chips > 0
        else None
    )
    gauge_memory = (
        run_gauge_memory_bench(gauge_samples, seed=seed)
        if gauge_samples > 0
        else None
    )
    store = (
        run_store_bench(store_chips, seed=seed, repeat=repeat)
        if store_chips > 0
        else None
    )
    obs_export = (
        run_obs_export_bench(export_chips, seed=seed, repeat=repeat)
        if export_chips > 0
        else None
    )
    report = BenchReport(
        seed=seed,
        jobs=jobs,
        repeat=repeat,
        experiment_wall_s=walls,
        total_wall_s=total_wall_s,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        baseline_total_s=baseline_total_s,
        fleet=fleet,
        obs_overhead=obs_overhead,
        gauge_memory=gauge_memory,
        store=store,
        obs_export=obs_export,
    )
    if out_path is not None:
        path = Path(out_path)
        path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


def compare_to_baseline(
    report: BenchReport,
    baseline_path: str | Path,
    *,
    threshold: float = 2.0,
    noise_floor_s: float = MIN_REGRESSION_S,
) -> tuple[bool, str]:
    """Diff a fresh bench run against a committed artifact (CI perf gate).

    Compares the total wall-clock over the experiments both runs measured;
    the gate trips when ``fresh / baseline > threshold`` *and* the
    absolute delta exceeds ``noise_floor_s`` (default
    :data:`MIN_REGRESSION_S`: sub-50 ms deltas are scheduling noise, not
    regressions; ``--noise-floor-ms`` tunes it).  When the fresh run
    carries a :class:`StoreBench` entry, its warm-over-cold speedup must
    also stay above :data:`STORE_SPEEDUP_FLOOR` — the same two-condition
    shape, gating ``warm`` against ``cold / floor``.  Returns
    ``(ok, text)`` — the caller turns ``ok=False`` into a non-zero exit.
    """
    if threshold <= 0.0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    if noise_floor_s < 0.0:
        raise ConfigurationError(
            f"noise floor must be >= 0, got {noise_floor_s}"
        )
    path = Path(baseline_path)
    if not path.exists():
        raise ConfigurationError(f"no bench baseline at {path}")
    doc = json.loads(path.read_text(encoding="utf-8"))
    schema = str(doc.get("schema", ""))
    if not schema.startswith("bench_solver/"):
        raise ConfigurationError(
            f"{path} is not a bench artifact (schema {schema!r})"
        )
    baseline_walls = {
        entry["id"]: float(entry["wall_s"])
        for entry in doc.get("experiments", [])
    }
    shared = [
        experiment_id
        for experiment_id in report.experiment_wall_s
        if experiment_id in baseline_walls
    ]
    if not shared:
        raise ConfigurationError(
            f"no overlapping experiments between this run and {path}"
        )

    lines = [f"compare vs {path} ({len(shared)} shared experiment(s)):"]
    for experiment_id in shared:
        fresh_s = report.experiment_wall_s[experiment_id]
        base_s = baseline_walls[experiment_id]
        ratio = fresh_s / base_s if base_s > 0.0 else float("inf")
        lines.append(
            f"  {experiment_id:<16} {fresh_s:7.3f}s vs {base_s:7.3f}s "
            f"({ratio:5.2f}x)"
        )
    fresh_total = sum(report.experiment_wall_s[i] for i in shared)
    base_total = sum(baseline_walls[i] for i in shared)
    total_ratio = fresh_total / base_total if base_total > 0.0 else float("inf")
    lines.append(
        f"  {'total':<16} {fresh_total:7.3f}s vs {base_total:7.3f}s "
        f"({total_ratio:5.2f}x, threshold {threshold:.2f}x)"
    )
    if report.fleet is not None and "fleet" in doc:
        lines.append(
            f"  fleet speedup: {report.fleet.speedup:.2f}x now vs "
            f"{float(doc['fleet'].get('speedup', 0.0)):.2f}x committed"
        )

    regressed = exceeds_ratio_gate(
        fresh_total, base_total, threshold=threshold, min_delta=noise_floor_s
    )
    if regressed:
        lines.append(
            f"REGRESSION: total wall exceeds the committed baseline by more "
            f"than {threshold:.2f}x"
        )
    else:
        lines.append("within threshold")

    store_regressed = False
    if report.store is not None:
        st = report.store
        committed = ""
        if "store" in doc:
            committed = (
                f" vs {float(doc['store'].get('speedup', 0.0)):.2f}x committed"
            )
        lines.append(
            f"  store speedup: {st.speedup:.2f}x warm-over-cold{committed} "
            f"(floor {STORE_SPEEDUP_FLOOR:.1f}x)"
        )
        store_regressed = exceeds_ratio_gate(
            st.warm_wall_s,
            st.cold_wall_s / STORE_SPEEDUP_FLOOR,
            threshold=1.0,
            min_delta=noise_floor_s,
        )
        if store_regressed:
            lines.append(
                f"REGRESSION: warm store run no longer beats cold by "
                f"{STORE_SPEEDUP_FLOOR:.1f}x"
            )

    alerts_regressed = False
    if report.obs_export is not None:
        ox = report.obs_export
        committed = ""
        if "obs_export" in doc:
            committed = (
                f" vs +{100.0 * float(doc['obs_export'].get('overhead_ratio', 0.0)):.1f}%"
                " committed"
            )
        lines.append(
            f"  alerting tax: +{100.0 * ox.overhead_ratio:.1f}%{committed} "
            f"(ceiling +{100.0 * (ALERTS_OVERHEAD_CEILING - 1.0):.0f}%)"
        )
        alerts_regressed = exceeds_ratio_gate(
            ox.alerting_wall_s,
            ox.plain_wall_s,
            threshold=ALERTS_OVERHEAD_CEILING,
            min_delta=noise_floor_s,
        )
        if alerts_regressed:
            lines.append(
                f"REGRESSION: alerting capture exceeds the plain run by more "
                f"than {100.0 * (ALERTS_OVERHEAD_CEILING - 1.0):.0f}%"
            )
    return (
        not (regressed or store_regressed or alerts_regressed),
        "\n".join(lines),
    )


__all__ = [
    "BenchReport",
    "FleetBench",
    "GaugeMemoryBench",
    "ObsExportBench",
    "ObsOverheadBench",
    "StoreBench",
    "compare_to_baseline",
    "exceeds_ratio_gate",
    "run_bench",
    "run_fleet_bench",
    "run_gauge_memory_bench",
    "run_obs_export_bench",
    "run_obs_overhead_bench",
    "run_store_bench",
    "ALERTS_OVERHEAD_CEILING",
    "MIN_REGRESSION_S",
    "SCHEMA",
    "STORE_SPEEDUP_FLOOR",
]
