#!/usr/bin/env bash
# Full local gate: style lint (optional), domain lint, tier-1 tests.
# Usage: tools/check.sh    (from the repo root)
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests || failures=$((failures + 1))
else
    echo "== ruff check == (skipped: ruff not installed)"
fi

echo "== repro.lint (RL001-RL008, RL013) =="
python -m repro.lint src tests || failures=$((failures + 1))

echo "== repro.lint --project (RL009-RL012) =="
python -m repro.lint --project src || failures=$((failures + 1))

if command -v mypy >/dev/null 2>&1; then
    # Advisory only: surfaces new type errors without gating the build
    # until the annotation coverage is broad enough to make it blocking.
    echo "== mypy (non-blocking) =="
    mypy src/repro || echo "mypy reported issues (non-blocking)"
else
    echo "== mypy == (skipped: mypy not installed)"
fi

echo "== repro bench (smoke + perf gate + obs-overhead gate) =="
bench_out="$(mktemp)"
# Diffs a small fresh run against the committed artifact; the absolute
# noise floor in compare_to_baseline keeps tiny smoke runs from tripping
# on machine jitter, so this only fails on gross regressions.
if python -m repro bench --experiments fig01 --fleet-chips 32 \
        --obs-chips 24 --store-chips 24 --export-chips 24 \
        --compare BENCH_solver.json --out "$bench_out" >/dev/null; then
    echo "bench smoke ok"
    # Observability must stay within its 10% wall-clock budget on the
    # fleet-characterization path (streaming-telemetry mode).  Same
    # two-condition shape as the perf gate: the ratio threshold plus the
    # MIN_REGRESSION_S absolute floor, so sub-50ms deltas never flap.
    if python - "$bench_out" <<'PYEOF'
import json
import sys

from repro.analysis.bench import exceeds_ratio_gate

entry = json.load(open(sys.argv[1]))["obs_overhead"]
enabled, disabled = entry["enabled_wall_s"], entry["disabled_wall_s"]
if exceeds_ratio_gate(enabled, disabled, threshold=1.10):
    print(
        f"obs overhead gate FAILED: dark {disabled}s vs observed "
        f"{enabled}s (+{100.0 * entry['overhead_ratio']:.1f}%, budget 10%)"
    )
    raise SystemExit(1)
print(
    f"obs overhead gate ok: +{100.0 * entry['overhead_ratio']:.1f}% "
    "(budget 10%)"
)
PYEOF
    then
        :
    else
        failures=$((failures + 1))
    fi
    # The alerting path (tsdb capture + rule evaluation during a fleet
    # characterization) has its own, tighter 5% budget.
    if python - "$bench_out" <<'PYEOF'
import json
import sys

from repro.analysis.bench import exceeds_ratio_gate

entry = json.load(open(sys.argv[1]))["obs_export"]
alerted, plain = entry["alerting_wall_s"], entry["plain_wall_s"]
if exceeds_ratio_gate(alerted, plain, threshold=1.05):
    print(
        f"alerting overhead gate FAILED: plain {plain}s vs alerted "
        f"{alerted}s (+{100.0 * entry['overhead_ratio']:.1f}%, budget 5%)"
    )
    raise SystemExit(1)
print(
    f"alerting overhead gate ok: +{100.0 * entry['overhead_ratio']:.1f}% "
    "(budget 5%)"
)
PYEOF
    then
        :
    else
        failures=$((failures + 1))
    fi
else
    failures=$((failures + 1))
fi
rm -f "$bench_out"

echo "== solve store cold-vs-warm smoke =="
# Two fleet characterizations into the same store, in separate
# processes: the warm run must serve everything from disk (zero misses)
# and print a byte-identical report modulo the store-traffic line.
store_tmp="$(mktemp -d)"
if python -m repro fleet characterize --chips 8 --trials 2 --cores 4 \
        --solve-store "$store_tmp/store" >"$store_tmp/cold.txt" \
        && python -m repro fleet characterize --chips 8 --trials 2 --cores 4 \
        --solve-store "$store_tmp/store" >"$store_tmp/warm.txt" \
        && python -m repro store verify "$store_tmp/store" >/dev/null; then
    grep -v '^solve store' "$store_tmp/cold.txt" >"$store_tmp/cold.body"
    grep -v '^solve store' "$store_tmp/warm.txt" >"$store_tmp/warm.body"
    if cmp -s "$store_tmp/cold.body" "$store_tmp/warm.body" \
            && grep '^solve store' "$store_tmp/warm.txt" \
                | grep -q ' 0 misses' \
            && ! grep '^solve store' "$store_tmp/warm.txt" \
                | grep -q '^solve store [^:]*: 0 hits'; then
        echo "store cold-vs-warm smoke ok"
    else
        echo "store smoke FAILED: warm run diverged or missed the store"
        diff "$store_tmp/cold.body" "$store_tmp/warm.body" || true
        grep '^solve store' "$store_tmp/warm.txt" || true
        failures=$((failures + 1))
    fi
else
    failures=$((failures + 1))
fi
rm -rf "$store_tmp"

echo "== repro obs selfcheck =="
python -m repro obs selfcheck >/dev/null || failures=$((failures + 1))

echo "== alerts self-clean + openmetrics round-trip =="
# The shipped default rule pack must not fire on a healthy seeded fleet
# (exit 0 = zero alert windows), and the OpenMetrics page exported from
# the persisted tsdb must parse back losslessly.
alerts_tmp="$(mktemp -d)"
if python -m repro fleet characterize --chips 8 --trials 2 --cores 4 \
        --alerts default --tsdb "$alerts_tmp/tsdb" >/dev/null \
        && python -m repro obs export --tsdb "$alerts_tmp/tsdb" \
            --out "$alerts_tmp/page.txt" \
        && python - "$alerts_tmp/page.txt" <<'PYEOF'
import sys

from repro.obs.tsdb import parse_openmetrics

page = open(sys.argv[1], encoding="utf-8").read()
parsed = parse_openmetrics(page)
assert parsed["types"], "export produced no metric families"
assert parsed["samples"], "export produced no samples"
print(
    f"openmetrics round-trip ok: {len(parsed['types'])} families, "
    f"{len(parsed['samples'])} samples"
)
PYEOF
then
    echo "alerts self-clean smoke ok"
else
    echo "alerts smoke FAILED: default pack fired or export did not parse"
    failures=$((failures + 1))
fi
rm -rf "$alerts_tmp"

echo "== repro obs diff (same-seed self-comparison) =="
# Two observed runs at the same seed must diff clean: first-divergence
# diffing is itself the regression oracle for the obs pipeline.
obs_tmp="$(mktemp -d)"
if python -m repro trace fig01 --out "$obs_tmp/a" --tail 0 >/dev/null \
        && python -m repro trace fig01 --out "$obs_tmp/b" --tail 0 >/dev/null \
        && python -m repro obs diff "$obs_tmp/a" "$obs_tmp/b" >/dev/null; then
    echo "obs diff self-comparison ok"
else
    failures=$((failures + 1))
fi
rm -rf "$obs_tmp"

echo "== repro obs flame (smoke) =="
# table1 is the cheapest experiment that emits SpanEvents; both export
# formats must produce valid JSON with at least one span.
flame_tmp="$(mktemp -d)"
if python -m repro trace table1 --out "$flame_tmp/run" --tail 0 >/dev/null \
        && python -m repro obs flame "$flame_tmp/run" \
            --format chrome --out "$flame_tmp/chrome.json" \
        && python -m repro obs flame "$flame_tmp/run" \
            --format speedscope --out "$flame_tmp/speedscope.json" \
        && python - "$flame_tmp" <<'PYEOF'
import json
import sys

base = sys.argv[1]
chrome = json.load(open(f"{base}/chrome.json"))
speedscope = json.load(open(f"{base}/speedscope.json"))
assert chrome["traceEvents"], "chrome export has no spans"
assert speedscope["profiles"][0]["events"], "speedscope export has no spans"
PYEOF
then
    echo "obs flame smoke ok"
else
    failures=$((failures + 1))
fi
rm -rf "$flame_tmp"

echo "== tier-1 pytest =="
python -m pytest -x -q || failures=$((failures + 1))

if [ "$failures" -ne 0 ]; then
    echo "FAILED: $failures check(s) failed"
    exit 1
fi
echo "all checks passed"
