#!/usr/bin/env bash
# Full local gate: style lint (optional), domain lint, tier-1 tests.
# Usage: tools/check.sh    (from the repo root)
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests || failures=$((failures + 1))
else
    echo "== ruff check == (skipped: ruff not installed)"
fi

echo "== repro.lint (RL001-RL008) =="
python -m repro.lint src tests || failures=$((failures + 1))

echo "== repro.lint --project (RL009-RL012) =="
python -m repro.lint --project src || failures=$((failures + 1))

if command -v mypy >/dev/null 2>&1; then
    # Advisory only: surfaces new type errors without gating the build
    # until the annotation coverage is broad enough to make it blocking.
    echo "== mypy (non-blocking) =="
    mypy src/repro || echo "mypy reported issues (non-blocking)"
else
    echo "== mypy == (skipped: mypy not installed)"
fi

echo "== repro bench (smoke + perf gate) =="
bench_out="$(mktemp)"
# Diffs a small fresh run against the committed artifact; the absolute
# noise floor in compare_to_baseline keeps tiny smoke runs from tripping
# on machine jitter, so this only fails on gross regressions.
if python -m repro bench --experiments fig01 --fleet-chips 32 \
        --compare BENCH_solver.json --out "$bench_out" >/dev/null; then
    echo "bench smoke ok"
else
    failures=$((failures + 1))
fi
rm -f "$bench_out"

echo "== repro obs selfcheck =="
python -m repro obs selfcheck >/dev/null || failures=$((failures + 1))

echo "== repro obs diff (same-seed self-comparison) =="
# Two observed runs at the same seed must diff clean: first-divergence
# diffing is itself the regression oracle for the obs pipeline.
obs_tmp="$(mktemp -d)"
if python -m repro trace fig01 --out "$obs_tmp/a" --tail 0 >/dev/null \
        && python -m repro trace fig01 --out "$obs_tmp/b" --tail 0 >/dev/null \
        && python -m repro obs diff "$obs_tmp/a" "$obs_tmp/b" >/dev/null; then
    echo "obs diff self-comparison ok"
else
    failures=$((failures + 1))
fi
rm -rf "$obs_tmp"

echo "== tier-1 pytest =="
python -m pytest -x -q || failures=$((failures + 1))

if [ "$failures" -ne 0 ]; then
    echo "FAILED: $failures check(s) failed"
    exit 1
fi
echo "all checks passed"
