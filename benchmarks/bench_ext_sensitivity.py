"""Bench (extension): calibration sensitivity analysis."""

from repro.experiments import ext_sensitivity


def test_ext_sensitivity(experiment):
    result = experiment(ext_sensitivity.run)
    assert result.metric("ordering_holds_all_resistances") == 1.0
    assert result.metric("limit_ordering_violations") == 0.0
