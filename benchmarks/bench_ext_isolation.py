"""Bench (extension): socket isolation vs packed co-location."""

from repro.experiments import ext_isolation


def test_ext_isolation(experiment):
    result = experiment(ext_isolation.run)
    assert result.metric("isolation_dominates_performance") == 1.0
