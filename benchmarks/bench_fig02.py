"""Bench: regenerate Fig. 2 (SqueezeNet latency by setting/schedule)."""

from repro.experiments import fig02_squeezenet


def test_fig02_squeezenet(experiment):
    result = experiment(fig02_squeezenet.run)
    assert result.metric("static_latency_ms") == 80.0
    assert result.metric("best_latency_ms") < 72.0
