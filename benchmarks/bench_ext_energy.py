"""Bench (extension): energy efficiency of management scenarios."""

from repro.experiments import ext_energy


def test_ext_energy(experiment):
    result = experiment(ext_energy.run)
    assert result.metric("default_atm_efficiency_gain") > 1.0
    assert result.metric("managed_max_critical_mj") < result.metric(
        "static_critical_mj"
    )
