"""Bench: regenerate Table I (the full characterization sweep)."""

from repro.experiments import table1_limits


def test_table1_limits(experiment):
    result = experiment(table1_limits.run)
    assert result.metric("match_rate") >= 0.95
