"""Bench: regenerate Fig. 1 (frequency by timing-margin approach)."""

from repro.experiments import fig01_margin_modes


def test_fig01_margin_modes(experiment):
    result = experiment(fig01_margin_modes.run)
    assert result.metric("gain_ratio_finetuned_over_default") > 1.8
    assert result.metric("finetuned_idle_max_mhz") > 5100.0
