"""Bench: regenerate Table II (application classification)."""

from repro.experiments import table2_classes


def test_table2_classes(experiment):
    result = experiment(table2_classes.run)
    assert result.metric("critical_count") == 9
