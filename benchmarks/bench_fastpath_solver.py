"""Bench: the vectorized batched solver against the scalar reference.

Times one 8-row batch (a Fig. 5-style reduction staircase) through
``solve_many`` from a cold cache, and the same rows through the scalar
reference — the before/after pair PERFORMANCE.md documents.
"""

from repro.atm.chip_sim import ChipSim
from repro.fastpath.cache import reset_solve_cache
from repro.silicon import sample_chip


def _staircase_rows(sim):
    max_steps = min(core.preset_code for core in sim.chip.cores)
    return [
        sim.uniform_assignments(reduction_steps=steps)
        for steps in range(max_steps + 1)
    ]


def test_fastpath_batched_solve(benchmark):
    sim = ChipSim(sample_chip(2019, chip_id="bench"))
    rows = _staircase_rows(sim)

    def solve():
        reset_solve_cache()
        return sim.solve_many(rows)

    states = benchmark.pedantic(solve, rounds=5, iterations=1)
    assert len(states) == len(rows)
    assert all(state.iterations >= 1 for state in states)


def test_scalar_reference_solve(benchmark):
    sim = ChipSim(sample_chip(2019, chip_id="bench"))
    rows = _staircase_rows(sim)

    def solve():
        return [sim.solve_steady_state_reference(row) for row in rows]

    states = benchmark.pedantic(solve, rounds=5, iterations=1)
    assert len(states) == len(rows)
