"""Bench A3: optional rollback margin vs failure probability."""

from repro.experiments import ablation_rollback


def test_ablation_rollback(experiment):
    result = experiment(ablation_rollback.run)
    assert result.metric("rollback_monotone") == 1.0
