"""Bench: regenerate Fig. 12b (per-app performance-vs-frequency model)."""

from repro.experiments import fig12b_perf_model


def test_fig12b_perf_model(experiment):
    result = experiment(fig12b_perf_model.run)
    assert result.metric("compute_over_memory_slope_ratio") > 2.0
