"""Bench (extension): lifetime aging behaviour."""

from repro.experiments import ext_aging


def test_ext_aging(experiment):
    result = experiment(ext_aging.run)
    assert result.metric("frequency_loss_mhz") > 50.0
    assert result.metric("recharacterization_recommended") == 1.0
