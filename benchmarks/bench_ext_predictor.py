"""Bench (extension): guarded per-application CPM prediction."""

from repro.experiments import ext_predictor


def test_ext_predictor(experiment):
    result = experiment(ext_predictor.run)
    assert result.metric("predictor_is_safe") == 1.0
    assert result.metric("mean_extra_steps") > 0.2
