"""Bench: regenerate Fig. 14 (management-scenario comparison)."""

from repro.experiments import fig14_management


def test_fig14_management(experiment):
    result = experiment(fig14_management.run)
    assert (
        result.metric("avg_default_atm_pct")
        < result.metric("avg_unmanaged_finetuned_pct")
        < result.metric("avg_managed_max_pct")
    )
    assert result.metric("qos_target_met_everywhere") == 1.0
