"""Bench: regenerate Fig. 8 (uBench rollback distributions)."""

from repro.experiments import fig08_ubench_rollback


def test_fig08_ubench_rollback(experiment):
    result = experiment(fig08_ubench_rollback.run)
    assert 4 <= result.metric("cores_needing_rollback") <= 8
