"""Bench: regenerate the Fig. 13 pipeline trace."""

from repro.experiments import fig13_pipeline


def test_fig13_pipeline(experiment):
    result = experiment(fig13_pipeline.run)
    assert result.metric("frequency_requirement_met") == 1.0
    assert result.metric("power_budget_respected") == 1.0
