"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one of the paper's tables or figures via
the corresponding module in :mod:`repro.experiments`, times it with
pytest-benchmark, prints the same rows/series the paper reports, and
asserts the headline metric so a silent regression cannot masquerade as a
performance win.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_and_render(benchmark, runner, **kwargs):
    """Benchmark an experiment runner and print its report."""
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture exposing the run-and-render helper bound to the benchmark."""

    def _run(runner, **kwargs):
        return run_and_render(benchmark, runner, **kwargs)

    return _run
