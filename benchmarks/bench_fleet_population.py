"""Bench: the fleet-batched population solve against the chip loop.

Times a 64-chip sampled fleet (4 assignment rows per chip — baseline,
two reduction steps, and a near-preset row) through one
``solve_population`` batch from a cold cache, and the identical work
through the chip-at-a-time ``solve_many`` loop — the before/after pair
the PERFORMANCE.md population section documents (the committed
``BENCH_solver.json`` fleet entry measures the same pair at 500 chips).
"""

from repro.atm.chip_sim import ChipSim
from repro.fastpath.cache import reset_solve_cache
from repro.fastpath.population import solve_population
from repro.silicon import sample_chip

N_CHIPS = 64


def _fleet():
    sims = [
        ChipSim(sample_chip(2019 + index, chip_id=f"F{index}"))
        for index in range(N_CHIPS)
    ]
    rows_per_chip = []
    for sim in sims:
        max_steps = min(core.preset_code for core in sim.chip.cores)
        rows_per_chip.append(
            [
                sim.uniform_assignments(reduction_steps=min(steps, max_steps))
                for steps in (0, 2, 4, max_steps)
            ]
        )
    for sim in sims:
        sim.compiled  # noqa: B018 -- build tables outside the timed region
    return sims, rows_per_chip


def test_population_batched_solve(benchmark):
    sims, rows_per_chip = _fleet()

    def solve():
        reset_solve_cache()
        return solve_population(sims, rows_per_chip)

    states = benchmark.pedantic(solve, rounds=5, iterations=1)
    assert len(states) == N_CHIPS
    assert all(len(chip_states) == 4 for chip_states in states)


def test_chip_at_a_time_loop(benchmark):
    sims, rows_per_chip = _fleet()

    def solve():
        reset_solve_cache()
        return [
            sim.solve_many(rows) for sim, rows in zip(sims, rows_per_chip)
        ]

    states = benchmark.pedantic(solve, rounds=5, iterations=1)
    assert len(states) == N_CHIPS
