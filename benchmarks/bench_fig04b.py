"""Bench: regenerate Fig. 4b (factory preset inserted delays)."""

from repro.experiments import fig04b_presets


def test_fig04b_presets(experiment):
    result = experiment(fig04b_presets.run)
    assert result.metric("testbed_preset_range_ratio") > 2.5
