"""Bench A5: synchronized vs independent multi-core di/dt."""

from repro.experiments import ablation_sync


def test_ablation_sync(experiment):
    result = experiment(ablation_sync.run)
    assert result.metric("droop_ratio_sync_over_independent") > 1.5
    assert result.metric("sync_is_worse") == 1.0
