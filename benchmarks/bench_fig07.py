"""Bench: regenerate Fig. 7 (idle-limit distributions and frequencies)."""

from repro.experiments import fig07_idle_limits


def test_fig07_idle_limits(experiment):
    result = experiment(fig07_idle_limits.run)
    assert result.metric("max_distribution_spread") <= 2
    assert result.metric("cores_above_5ghz") >= 8
