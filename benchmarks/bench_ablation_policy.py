"""Bench A4: overclocking vs undervolting policy."""

from repro.experiments import ablation_policy


def test_ablation_policy(experiment):
    result = experiment(ablation_policy.run)
    assert result.metric("undervolt_vdd") < 1.25
    assert result.metric("overclock_fastest_gain_pct") > 10.0
