"""Bench A2: per-core vs chip-wide CPM fine-tuning."""

from repro.experiments import ablation_granularity


def test_ablation_granularity(experiment):
    result = experiment(ablation_granularity.run)
    assert result.metric("gain_ratio_per_core_over_chip_wide") > 1.1
