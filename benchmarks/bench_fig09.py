"""Bench: regenerate Fig. 9 (x264 vs gcc CPM rollback)."""

from repro.experiments import fig09_app_rollback


def test_fig09_app_rollback(experiment):
    result = experiment(fig09_app_rollback.run)
    assert result.metric("cores_where_x264_needs_more") == 16
