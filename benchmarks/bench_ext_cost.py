"""Bench (extension): test-time cost of the procedures."""

from repro.experiments import ext_cost


def test_ext_cost(experiment):
    result = experiment(ext_cost.run)
    assert result.metric("cost_ratio_char_over_deploy") > 100.0
