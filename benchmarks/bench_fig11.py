"""Bench: regenerate Fig. 11 (post-stress-test deployment frequencies)."""

from repro.experiments import fig11_stress_test


def test_fig11_stress_test(experiment):
    result = experiment(fig11_stress_test.run)
    assert result.metric("all_cores_survived_battery") == 1.0
    assert result.metric("p0c1_minus_p0c7_mhz") > 200.0
