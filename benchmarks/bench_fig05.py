"""Bench: regenerate Fig. 5 (frequency vs CPM delay reduction)."""

from repro.experiments import fig05_freq_vs_reduction


def test_fig05_freq_vs_reduction(experiment):
    result = experiment(fig05_freq_vs_reduction.run)
    assert result.metric("p1c6_step1_gain_mhz") > 200.0
    assert result.metric("best_gain_over_static_pct") > 20.0
