"""Bench A1: loop response latency vs di/dt droop speed."""

from repro.experiments import ablation_loop_latency


def test_ablation_loop_latency(experiment):
    result = experiment(ablation_loop_latency.run)
    assert result.metric("violations_fast_loop") == 0.0
    assert result.metric("violations_slow_loop") > 0.0
