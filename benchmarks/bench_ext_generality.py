"""Bench (extension): generality across ATM platforms."""

from repro.experiments import ext_generality


def test_ext_generality(experiment):
    result = experiment(ext_generality.run)
    assert result.metric("managed_beats_default_everywhere") == 1.0
    assert result.metric("slope_tracks_grid_weakness") == 1.0
