"""Bench: regenerate Fig. 10 (per-<app, core> rollback matrix)."""

from repro.experiments import fig10_rollback_matrix


def test_fig10_rollback_matrix(experiment):
    result = experiment(fig10_rollback_matrix.run, trials=5)
    assert result.metric("x264_mean_rollback") > result.metric("gcc_mean_rollback")
    assert result.metric("heavy_apps_rank_worst") <= 3
