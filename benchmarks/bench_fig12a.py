"""Bench: regenerate Fig. 12a (per-core frequency-vs-power model)."""

from repro.experiments import fig12a_freq_model


def test_fig12a_freq_model(experiment):
    result = experiment(fig12a_freq_model.run)
    assert 1.7 < result.metric("mean_mhz_per_watt") < 2.4
    assert result.metric("min_r_squared") > 0.999
